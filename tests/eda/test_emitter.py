"""GateEmitter property tests: the datapath generators behind synthesis.

Each property builds a small netlist with the emitter, simulates it, and
checks the arithmetic identity the generator must preserve.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eda.synthesis import GateEmitter, _library_with_constants
from repro.pcl.netlist import NetlistBuilder
from repro.pcl.simulate import simulate_bus

u8 = st.integers(min_value=0, max_value=255)
u6 = st.integers(min_value=0, max_value=63)


def make_emitter(name: str):
    builder = NetlistBuilder(name)
    builder.library = _library_with_constants(builder.library)
    return builder, GateEmitter(builder)


def finish_and_run(builder, emit, out_bits, buses, widths):
    builder.output_bus("out", [emit.materialize(bit) for bit in out_bits])
    netlist = builder.build()
    return simulate_bus(netlist, buses, widths)["out"]


class TestCarrySave:
    @given(u8, u8)
    @settings(max_examples=15, deadline=None)
    def test_multiply_carry_save_rows_sum_to_product(self, a, b):
        builder, emit = make_emitter("csmul")
        a_bits = builder.input_bus("a", 8)
        b_bits = builder.input_bus("b", 8)
        row_s, row_c = emit.multiply_carry_save(a_bits, b_bits)
        total, _ = emit.ripple_add(row_s, row_c)
        out = finish_and_run(
            builder, emit, total, {"a": a, "b": b}, {"a": 8, "b": 8}
        )
        assert out % 65536 == a * b

    @given(st.lists(u6, min_size=3, max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_carry_save_reduce_preserves_sum(self, values):
        width = 10
        builder, emit = make_emitter("csr")
        rows = []
        buses = {}
        widths = {}
        for k, value in enumerate(values):
            bits = builder.input_bus(f"x{k}", 6)
            rows.append(list(bits))
            buses[f"x{k}"] = value
            widths[f"x{k}"] = 6
        while len(rows) > 2:
            rows = emit.carry_save_reduce(rows, width)
        padded = [(row + [False] * width)[:width] for row in rows]
        total, _ = emit.ripple_add(padded[0], padded[1])
        out = finish_and_run(builder, emit, total, buses, widths)
        assert out == sum(values) % (1 << width)


class TestComparatorsAndFolding:
    @given(u8, u8, st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_full_add_with_constant_carry(self, a, b, carry):
        builder, emit = make_emitter("fac")
        a_bits = builder.input_bus("a", 8)
        b_bits = builder.input_bus("b", 8)
        total, cout = emit.ripple_add(a_bits, b_bits, carry_in=carry)
        out = finish_and_run(
            builder, emit, total + [cout], {"a": a, "b": b}, {"a": 8, "b": 8}
        )
        assert out == a + b + int(carry)

    @given(u8, u8)
    @settings(max_examples=15, deadline=None)
    def test_subtract_not_borrow(self, a, b):
        builder, emit = make_emitter("subnb")
        a_bits = builder.input_bus("a", 8)
        b_bits = builder.input_bus("b", 8)
        diff, not_borrow = emit.subtract(a_bits, b_bits)
        out = finish_and_run(
            builder, emit, diff + [not_borrow], {"a": a, "b": b}, {"a": 8, "b": 8}
        )
        assert out & 0xFF == (a - b) % 256
        assert (out >> 8) == int(a >= b)

    def test_pure_constant_full_add(self):
        _, emit = make_emitter("cfa")
        for a in (False, True):
            for b in (False, True):
                for c in (False, True):
                    s, carry = emit.full_add(a, b, c)
                    assert int(s) + 2 * int(carry) == int(a) + int(b) + int(c)

    def test_reduce_tree_empty_rejected(self):
        from repro.errors import SynthesisError

        _, emit = make_emitter("empty")
        with pytest.raises(SynthesisError):
            emit.reduce_tree([], "or")

    @given(st.lists(st.booleans(), min_size=1, max_size=9))
    @settings(max_examples=15, deadline=None)
    def test_reduce_tree_constants(self, bits):
        _, emit = make_emitter("red")
        assert emit.reduce_tree(list(bits), "or") == any(bits)
        assert emit.reduce_tree(list(bits), "and") == all(bits)
        xor_expected = bool(sum(bits) % 2)
        assert emit.reduce_tree(list(bits), "xor") == xor_expected


class TestBarrelShift:
    @given(u8, st.integers(min_value=0, max_value=15))
    @settings(max_examples=15, deadline=None)
    def test_shift_beyond_width_zeroes(self, a, amount):
        builder, emit = make_emitter("bigshift")
        a_bits = builder.input_bus("a", 8)
        amt_bits = builder.input_bus("amt", 4)  # up to 15 > width 8
        shifted = emit.barrel_shift(a_bits, amt_bits, left=True)
        out = finish_and_run(
            builder, emit, shifted,
            {"a": a, "amt": amount}, {"a": 8, "amt": 4},
        )
        assert out == (a << amount) % 256
