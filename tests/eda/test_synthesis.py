"""Synthesis tests: word-level ops lower to functionally correct gates.

Every op kind is checked by simulating the synthesized netlist against
Python reference arithmetic, with hypothesis driving the operand space.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eda.rtl import RTLModule
from repro.eda.synthesis import synthesize
from repro.pcl.simulate import simulate_bus

u8 = st.integers(min_value=0, max_value=255)
u4 = st.integers(min_value=0, max_value=15)


def run(module, **buses):
    widths = {s.name: s.width for s in module.inputs}
    netlist = synthesize(module)
    return simulate_bus(netlist, buses, widths)


class TestArithmetic:
    @given(u8, u8)
    @settings(max_examples=25, deadline=None)
    def test_add(self, a, b):
        m = RTLModule("add")
        x, y = m.input("a", 8), m.input("b", 8)
        m.output("out", m.add(x, y))
        assert run(m, a=a, b=b)["out"] == a + b

    @given(u8, u8)
    @settings(max_examples=25, deadline=None)
    def test_sub_modulo(self, a, b):
        m = RTLModule("sub")
        x, y = m.input("a", 8), m.input("b", 8)
        m.output("out", m.sub(x, y))
        assert run(m, a=a, b=b)["out"] == (a - b) % 256

    @given(u8, u8)
    @settings(max_examples=25, deadline=None)
    def test_mul(self, a, b):
        m = RTLModule("mul")
        x, y = m.input("a", 8), m.input("b", 8)
        m.output("out", m.mul(x, y))
        assert run(m, a=a, b=b)["out"] == a * b

    @given(u4, u4, u4)
    @settings(max_examples=25, deadline=None)
    def test_add_of_mul(self, a, b, c):
        m = RTLModule("mac")
        x, y = m.input("a", 4), m.input("b", 4)
        z = m.input("c", 4)
        wide_c = m.concat(z, m.const(0, 4))
        m.output("out", m.add(m.mul(x, y), wide_c))
        assert run(m, a=a, b=b, c=c)["out"] == a * b + c


class TestBitwiseAndCompare:
    @given(u8, u8)
    @settings(max_examples=20, deadline=None)
    def test_bitwise(self, a, b):
        m = RTLModule("bitops")
        x, y = m.input("a", 8), m.input("b", 8)
        m.output("and_", m.and_(x, y))
        m.output("or_", m.or_(x, y))
        m.output("xor_", m.xor(x, y))
        m.output("not_", m.not_(x))
        out = run(m, a=a, b=b)
        assert out["and_"] == a & b
        assert out["or_"] == a | b
        assert out["xor_"] == a ^ b
        assert out["not_"] == (~a) % 256

    @given(u8, u8)
    @settings(max_examples=20, deadline=None)
    def test_compare(self, a, b):
        m = RTLModule("cmp")
        x, y = m.input("a", 8), m.input("b", 8)
        m.output("eq", m.eq(x, y))
        m.output("lt", m.lt(x, y))
        out = run(m, a=a, b=b)
        assert out["eq"] == int(a == b)
        assert out["lt"] == int(a < b)


class TestShiftsAndSteering:
    @given(u8, st.integers(min_value=0, max_value=7))
    @settings(max_examples=20, deadline=None)
    def test_dynamic_shifts(self, a, amount):
        m = RTLModule("shift")
        x = m.input("a", 8)
        amt = m.input("amt", 3)
        m.output("left", m.shl_dyn(x, amt))
        m.output("right", m.shr_dyn(x, amt))
        out = run(m, a=a, amt=amount)
        assert out["left"] == (a << amount) % 256
        assert out["right"] == a >> amount

    @given(u8)
    @settings(max_examples=10, deadline=None)
    def test_constant_shifts(self, a):
        m = RTLModule("cshift")
        x = m.input("a", 8)
        m.output("left", m.shl(x, 3))
        m.output("right", m.shr(x, 2))
        out = run(m, a=a)
        assert out["left"] == (a << 3) % 256
        assert out["right"] == a >> 2

    @given(st.booleans(), u8, u8)
    @settings(max_examples=20, deadline=None)
    def test_mux(self, s, a, b):
        m = RTLModule("mux")
        sel = m.input("s", 1)
        x, y = m.input("a", 8), m.input("b", 8)
        m.output("out", m.mux(sel, x, y))
        assert run(m, s=int(s), a=a, b=b)["out"] == (b if s else a)

    @given(u8)
    @settings(max_examples=10, deadline=None)
    def test_reductions(self, a):
        m = RTLModule("reduce")
        x = m.input("a", 8)
        m.output("any", m.reduce_or(x))
        m.output("all", m.reduce_and(x))
        out = run(m, a=a)
        assert out["any"] == int(a != 0)
        assert out["all"] == int(a == 255)


class TestConstantFolding:
    def test_const_add_fully_folds(self):
        m = RTLModule("cadd")
        m.output("out", m.add(m.const(3, 4), m.const(5, 4)))
        netlist = synthesize(m)
        # Constants fold; only const cells remain to drive the ports.
        kinds = set(netlist.cell_histogram())
        assert kinds <= {"const0", "const1"}
        assert simulate_bus(netlist, {}, {})["out"] == 8

    def test_mux_with_constant_select_picks_branch(self):
        m = RTLModule("cmux")
        a = m.input("a", 4)
        m.output("out", m.mux(m.const(1, 1), a, m.not_(a)))
        out = run(m, a=5)
        assert out["out"] == (~5) % 16

    def test_and_with_zero_is_zero(self):
        m = RTLModule("czero")
        a = m.input("a", 4)
        m.output("out", m.and_(a, m.const(0, 4)))
        netlist = synthesize(m)
        assert simulate_bus(netlist, {"a": 9}, {"a": 4})["out"] == 0
