"""Word-level RTL IR tests."""

from __future__ import annotations

import pytest

from repro.eda.rtl import Op, RTLModule
from repro.errors import ConfigError


class TestPorts:
    def test_input_output(self):
        m = RTLModule("m")
        a = m.input("a", 8)
        m.output("out", a)
        assert a.width == 8
        assert m.outputs == [("out", a)]

    def test_registered_input(self):
        m = RTLModule("m")
        m.input("acc", 32, registered=True)
        assert "acc" in m.registered_inputs

    def test_const_range_checked(self):
        m = RTLModule("m")
        assert m.const(255, 8).width == 8
        with pytest.raises(ConfigError):
            m.const(256, 8)


class TestWidths:
    def test_add_grows_one_bit(self):
        m = RTLModule("m")
        a, b = m.input("a", 8), m.input("b", 8)
        assert m.add(a, b).width == 9

    def test_mul_width_sum(self):
        m = RTLModule("m")
        a, b = m.input("a", 8), m.input("b", 4)
        assert m.mul(a, b).width == 12

    def test_mismatched_widths_rejected(self):
        m = RTLModule("m")
        a, b = m.input("a", 8), m.input("b", 4)
        with pytest.raises(ConfigError, match="share a width"):
            m.add(a, b)

    def test_comparisons_are_one_bit(self):
        m = RTLModule("m")
        a, b = m.input("a", 8), m.input("b", 8)
        assert m.eq(a, b).width == 1
        assert m.lt(a, b).width == 1

    def test_mux_select_must_be_one_bit(self):
        m = RTLModule("m")
        s, a, b = m.input("s", 2), m.input("a", 8), m.input("b", 8)
        with pytest.raises(ConfigError, match="1 bit"):
            m.mux(s, a, b)

    def test_concat_and_slice(self):
        m = RTLModule("m")
        lo, hi = m.input("lo", 4), m.input("hi", 4)
        cat = m.concat(lo, hi)
        assert cat.width == 8
        assert m.slice_(cat, 0, 3).width == 4
        with pytest.raises(ConfigError):
            m.slice_(cat, 6, 9)

    def test_shift_amount_validation(self):
        m = RTLModule("m")
        a = m.input("a", 8)
        assert m.shl(a, 3).width == 8
        with pytest.raises(ConfigError):
            m.shr(a, -1)

    def test_reduce_widths(self):
        m = RTLModule("m")
        a = m.input("a", 8)
        assert m.reduce_or(a).width == 1
        assert m.reduce_and(a).width == 1


class TestSSA:
    def test_operations_recorded_in_order(self):
        m = RTLModule("m")
        a, b = m.input("a", 4), m.input("b", 4)
        m.add(a, b)
        kinds = [op.op for op in m.operations]
        assert kinds == [Op.INPUT, Op.INPUT, Op.ADD]

    def test_unique_uids(self):
        m = RTLModule("m")
        signals = [m.input(f"i{k}", 4) for k in range(10)]
        assert len({s.uid for s in signals}) == 10
