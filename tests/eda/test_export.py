"""Verilog-export tests."""

from __future__ import annotations

import re

import pytest

from repro.eda.designs import adder, mac_bf16
from repro.eda.export import cell_stub_modules, to_verilog
from repro.eda.flow import run_flow
from repro.eda.synthesis import synthesize
from repro.pcl.library import DEFAULT_LIBRARY


class TestToVerilog:
    @pytest.fixture(scope="class")
    def adder_verilog(self):
        return to_verilog(synthesize(adder(8)))

    def test_module_header(self, adder_verilog):
        assert adder_verilog.startswith("module adder8(")
        assert adder_verilog.rstrip().endswith("endmodule")

    def test_ports_declared(self, adder_verilog):
        for k in range(8):
            assert f"input a_{k}_;" in adder_verilog
            assert f"input b_{k}_;" in adder_verilog
        assert "output sum_0_;" in adder_verilog
        assert "output sum_8_;" in adder_verilog

    def test_instances_reference_pcl_cells(self, adder_verilog):
        assert "PCL_FA" in adder_verilog or "PCL_HA" in adder_verilog

    def test_instance_count_matches_netlist(self):
        netlist = synthesize(adder(8))
        text = to_verilog(netlist)
        instances = re.findall(r"^\s+PCL_\w+ u\d+", text, re.MULTILINE)
        assert len(instances) == len(netlist.instances)

    def test_identifiers_legal(self, adder_verilog):
        for line in adder_verilog.splitlines():
            for ident in re.findall(r"\.(?:i|o)\d+\(([^)]+)\)", line):
                assert re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", ident), ident

    def test_post_flow_netlist_exports(self):
        report = run_flow(mac_bf16())
        text = to_verilog(report.netlist)
        assert "PCL_SPLIT2" in text  # splitters survived into the export
        assert "PCL_BUF" in text  # balancing buffers too

    def test_every_internal_wire_declared(self):
        netlist = synthesize(adder(8))
        text = to_verilog(netlist)
        declared = set(re.findall(r"^\s+(?:wire|input|output) (\w+);", text, re.MULTILINE))
        used = set()
        for pin in re.findall(r"\.(?:i|o)\d+\((\w+)\)", text):
            used.add(pin)
        assert used <= declared


class TestStubs:
    def test_stub_per_cell(self):
        text = cell_stub_modules(DEFAULT_LIBRARY)
        for name in DEFAULT_LIBRARY.names():
            assert f"module PCL_{name.upper()}(" in text

    def test_stub_mentions_jj_cost(self):
        text = cell_stub_modules(DEFAULT_LIBRARY)
        assert "40 JJ" in text  # the full adder
