"""Process-node tests: the Table I parameter sets."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.tech.process import CMOS_5NM, SCD_NBTIN
from repro.units import GHZ, MM2


class TestSCDProcess:
    def test_frequency(self):
        assert SCD_NBTIN.operating_frequency == 30 * GHZ

    def test_device_density_400m_per_cm2(self):
        per_cm2 = SCD_NBTIN.device_density * 1e-4
        assert per_cm2 == pytest.approx(400e6)

    def test_devices_in_compute_die(self):
        # 144 mm² at 4 M/mm² = 576 MJJ.
        assert SCD_NBTIN.devices_in_area(144) == pytest.approx(576e6)

    def test_sram_bytes_per_die(self):
        # 0.4 Mbit/mm² incl. periphery -> 7.2 MB raw on 144 mm².
        assert SCD_NBTIN.sram_bytes_in_area(144) == pytest.approx(7.2e6)

    def test_cycle_time(self):
        assert SCD_NBTIN.cycle_time == pytest.approx(1 / 30e9)

    def test_temperature_budget_enables_integration(self):
        # NbTiN's 420 C budget vs legacy Nb's <=200 C (Sec. II-A).
        assert SCD_NBTIN.temperature_budget_celsius > 200

    def test_junction_cd_range(self):
        assert SCD_NBTIN.min_junction_diameter < SCD_NBTIN.max_junction_diameter
        assert SCD_NBTIN.cd_sigma < 0.02 + 1e-12

    def test_switching_energy_positive(self):
        assert SCD_NBTIN.switching_energy > 0


class TestCMOSProcess:
    def test_frequency(self):
        assert CMOS_5NM.operating_frequency == 2 * GHZ

    def test_density_ratio(self):
        # FinFETs are ~40x denser than JJs (170 vs 4 M/mm²).
        assert CMOS_5NM.device_density / SCD_NBTIN.device_density == pytest.approx(
            42.5
        )

    def test_sram_density_advantage(self):
        # CMOS SRAM is ~90x denser than JSRAM per Table I.
        ratio = CMOS_5NM.sram_bit_density / SCD_NBTIN.sram_bit_density
        assert 80 < ratio < 100

    def test_lithography_labels(self):
        assert CMOS_5NM.lithography == "EUV"
        assert SCD_NBTIN.lithography == "193i"

    def test_rejects_negative_area(self):
        with pytest.raises(ConfigError):
            CMOS_5NM.devices_in_area(-1)
