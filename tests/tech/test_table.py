"""Table I generator tests."""

from __future__ import annotations

from repro.tech.table import (
    render_table,
    technology_comparison_rows,
    technology_comparison_table,
)


class TestTableRows:
    def test_row_count_and_parameters(self):
        rows = technology_comparison_rows()
        names = [r.parameter for r in rows]
        assert "Operating Frequency" in names
        assert "On-chip Memory" in names
        assert "Lithography" in names
        assert len(rows) == 12

    def test_frequency_row_values(self):
        rows = {r.parameter: r for r in technology_comparison_rows()}
        freq = rows["Operating Frequency"]
        assert freq.cmos == "2GHz"
        assert freq.scd == "30GHz"

    def test_device_row(self):
        rows = {r.parameter: r for r in technology_comparison_rows()}
        assert rows["Device"].scd == "Josephson Junction"
        assert rows["Device"].cmos == "FinFET"

    def test_memory_rows(self):
        rows = {r.parameter: r for r in technology_comparison_rows()}
        assert rows["On-chip Memory"].scd == "JSRAM"
        assert "8JJ" in rows["- HD Unit Cell"].scd
        assert "6T" in rows["- HD Unit Cell"].cmos


class TestRendering:
    def test_render_contains_all_rows(self):
        text = technology_comparison_table()
        for row in technology_comparison_rows():
            assert row.parameter in text

    def test_render_is_aligned(self):
        lines = technology_comparison_table().splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # perfectly rectangular

    def test_render_table_headers(self):
        rows = technology_comparison_rows()
        text = render_table(rows, ("P", "A", "B"))
        assert text.splitlines()[1].startswith("| P")
