"""Wire-physics tests: NbTiN vs Cu transmission lines."""

from __future__ import annotations

import pytest

from repro.tech.interconnect import (
    CU_M1,
    NBTIN_M1,
    TransmissionLine,
    WireMaterial,
    communication_energy_ratio,
)


class TestDelays:
    def test_nbtin_is_ballistic(self):
        # Superconducting line: time of flight dominates RC.
        assert NBTIN_M1.delay == pytest.approx(NBTIN_M1.time_of_flight)

    def test_cu_long_line_is_rc_limited(self):
        long_cu = TransmissionLine(
            material=WireMaterial.COPPER, width=28e-9, length=5e-3
        )
        assert long_cu.rc_delay > long_cu.time_of_flight
        assert long_cu.delay == pytest.approx(long_cu.rc_delay)

    def test_rc_grows_quadratically_with_length(self):
        short = TransmissionLine(material=WireMaterial.COPPER, length=1e-3)
        double = TransmissionLine(material=WireMaterial.COPPER, length=2e-3)
        assert double.rc_delay == pytest.approx(4 * short.rc_delay)

    def test_time_of_flight_linear_in_length(self):
        short = TransmissionLine(material=WireMaterial.NBTIN, length=1e-3)
        double = TransmissionLine(material=WireMaterial.NBTIN, length=2e-3)
        assert double.time_of_flight == pytest.approx(2 * short.time_of_flight)


class TestBandwidth:
    def test_nbtin_passes_clock_rate(self):
        # The 30 GHz system clock passes untouched; the residual-resistance
        # cap sits far above it ("negligible dissipation and dispersion").
        assert NBTIN_M1.max_bandwidth_per_wire(30e9) == pytest.approx(30e9)
        assert NBTIN_M1.max_bandwidth_per_wire(1e12) > 80e9

    def test_cu_minimum_pitch_is_rc_capped(self):
        long_cu = TransmissionLine(
            material=WireMaterial.COPPER, width=28e-9, length=5e-3
        )
        assert long_cu.max_bandwidth_per_wire(30e9) < 30e9

    def test_resistance_ordering(self):
        assert NBTIN_M1.resistance < CU_M1.resistance


class TestEnergy:
    def test_energy_ratio_exceeds_100x(self):
        assert communication_energy_ratio() > 100

    def test_transfer_energy_linear(self):
        assert NBTIN_M1.transfer_energy(2000) == pytest.approx(
            2 * NBTIN_M1.transfer_energy(1000)
        )

    def test_transfer_energy_rejects_negative(self):
        with pytest.raises(ValueError):
            NBTIN_M1.transfer_energy(-1)

    def test_characteristic_impedance_plausible(self):
        # Tens of ohms for on-chip microstrip.
        assert 10 < NBTIN_M1.characteristic_impedance < 200
