"""Device-model tests: JJ, FinFET, MIM capacitor."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.tech.device import FinFET, JosephsonJunction, MIMCapacitor
from repro.units import AJ, FLUX_QUANTUM, PS


class TestJosephsonJunction:
    def test_default_switching_energy_is_sub_attojoule(self):
        jj = JosephsonJunction()
        assert jj.switching_energy < 1 * AJ  # the paper's headline
        assert jj.switching_energy == pytest.approx(50e-6 * FLUX_QUANTUM)

    def test_switching_delay_is_picoseconds(self):
        jj = JosephsonJunction()
        assert 1 * PS < jj.switching_delay < 5 * PS

    def test_max_switching_rate_exceeds_30ghz(self):
        # 30 GHz operation requires the device to be much faster.
        assert JosephsonJunction().max_switching_rate > 100e9

    def test_thermal_stability(self):
        jj = JosephsonJunction()
        assert jj.thermal_stability_factor > 1000
        assert jj.bit_error_rate() == 0.0  # exp underflow -> exactly 0

    def test_bit_error_rate_marginal_device(self):
        weak = JosephsonJunction(critical_current=1e-9)
        assert 0 < weak.bit_error_rate() < 1

    def test_area_positive_and_round(self):
        jj = JosephsonJunction()
        expected = math.pi * (jj.diameter / 2) ** 2
        assert jj.area == pytest.approx(expected)

    def test_scaled_preserves_current_density(self):
        base = JosephsonJunction()
        double = base.scaled(base.diameter * 2)
        assert double.critical_current == pytest.approx(4 * base.critical_current)
        assert double.switching_energy == pytest.approx(4 * base.switching_energy)

    @given(st.floats(min_value=100e-9, max_value=600e-9))
    def test_scaled_energy_monotone_in_diameter(self, diameter):
        base = JosephsonJunction()
        scaled = base.scaled(diameter)
        assert (scaled.switching_energy > base.switching_energy) == (
            diameter > base.diameter
        )

    @pytest.mark.parametrize(
        "field", ["critical_current", "diameter", "characteristic_voltage", "temperature"]
    )
    def test_rejects_non_positive(self, field):
        with pytest.raises(ConfigError):
            JosephsonJunction(**{field: 0})


class TestFinFET:
    def test_switching_energy_dwarfs_jj(self):
        ratio = FinFET().switching_energy / JosephsonJunction().switching_energy
        # CMOS spends orders of magnitude more per switching event.
        assert ratio > 100

    def test_thermal_stability_comparable_metric(self):
        assert FinFET().thermal_stability_factor > 1000

    def test_area(self):
        fet = FinFET()
        assert fet.area == pytest.approx(fet.gate_pitch * 2 * fet.fin_pitch)

    def test_rejects_bad_voltage(self):
        with pytest.raises(ConfigError):
            FinFET(supply_voltage=-0.7)


class TestMIMCapacitor:
    def test_capacitance_scales_with_area(self):
        small = MIMCapacitor(diameter=195e-9)
        large = MIMCapacitor(diameter=390e-9)
        assert large.capacitance == pytest.approx(4 * small.capacitance)

    def test_resonant_frequency_formula(self):
        cap = MIMCapacitor()
        inductance = 1e-12
        freq = cap.resonant_frequency(inductance)
        assert freq == pytest.approx(
            1 / (2 * math.pi * math.sqrt(inductance * cap.capacitance))
        )

    def test_resonance_can_reach_30ghz(self):
        # There exists a plausible inductance that tunes the network to 30 GHz.
        cap = MIMCapacitor(diameter=600e-9)
        target = 30e9
        inductance = 1 / ((2 * math.pi * target) ** 2 * cap.capacitance)
        assert 1e-12 < inductance < 1e-6  # pH..µH: realizable wiring

    def test_rejects_bad_inductance(self):
        with pytest.raises(ConfigError):
            MIMCapacitor().resonant_frequency(0)
