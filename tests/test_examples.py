"""Smoke-run every example script so API churn cannot silently break them.

Each example's default path is fast (sub-second; the figure sweeps share
the process-wide kernel-timing cache), so tier-1 runs them all end to end
via subprocess — exactly how a user would.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script.name} printed nothing"
