"""Power/energy-model tests (future-work extension)."""

from __future__ import annotations

import pytest

from repro.core.model import Optimus
from repro.errors import ConfigError
from repro.parallel.mapper import map_training
from repro.parallel.strategy import ParallelConfig
from repro.power import (
    CoolingModel,
    EnergyBreakdown,
    PowerModel,
    gpu_power_model,
    scd_power_model,
)
from repro.workloads.llm import GPT3_76B

PAPER = ParallelConfig(8, 8, 1)


@pytest.fixture(scope="module")
def reports(request):
    from repro.arch import build_blade, build_gpu_system

    blade = build_blade().system().with_dram_bandwidth(16e12)
    gpu = build_gpu_system(64)
    scd_report = Optimus(blade).evaluate_training(
        map_training(GPT3_76B, blade, PAPER, 64)
    )
    gpu_report = Optimus(gpu).evaluate_training(
        map_training(GPT3_76B, gpu, PAPER, 64)
    )
    return blade, gpu, scd_report, gpu_report


class TestBreakdown:
    def test_totals(self):
        breakdown = EnergyBreakdown(compute=1.0, memory=2.0, network=3.0, overhead=4.0)
        assert breakdown.total_device == 10.0
        assert breakdown.total_wall == 10.0  # no multipliers -> 1x

    def test_wall_multipliers(self):
        breakdown = EnergyBreakdown(
            compute=1.0, memory=1.0, network=0.0, overhead=0.0,
            wall_multipliers={"compute": 500.0, "memory": 12.0},
        )
        assert breakdown.total_wall == pytest.approx(512.0)


class TestCoefficients:
    def test_scd_per_flop_sub_picojoule(self, reports):
        blade, *_ = reports
        model = scd_power_model(blade)
        # ~4k JJ events per FLOP at ~0.1 aJ each: deep sub-pJ.
        assert model.energy_per_flop < 1e-14

    def test_gpu_per_flop_picojoule_class(self, reports):
        _, gpu, *_ = reports
        assert 0.1e-12 < gpu_power_model(gpu).energy_per_flop < 5e-12

    def test_stage_assignment(self, reports):
        blade, gpu, *_ = reports
        assert scd_power_model(blade).compute_stage == "4K"
        assert scd_power_model(blade).memory_stage == "77K"
        assert gpu_power_model(gpu).compute_stage == "RT"

    def test_cooling_validation(self):
        with pytest.raises(ConfigError):
            CoolingModel(w_per_w_4k=0)


class TestHeadlineClaims:
    def test_device_level_gain_near_100x(self, reports):
        """The intro's '100x less on-chip power' claim, per training batch."""
        blade, gpu, scd_report, gpu_report = reports
        scd_pm, gpu_pm = scd_power_model(blade), gpu_power_model(gpu)
        scd_e = scd_pm.training_energy(
            scd_report, *scd_pm.estimate_training_traffic(scd_report)
        )
        gpu_e = gpu_pm.training_energy(
            gpu_report, *gpu_pm.estimate_training_traffic(gpu_report)
        )
        gain = gpu_e.total_device / scd_e.total_device
        assert 30 <= gain <= 300

    def test_wall_plug_gain_survives_cooling(self, reports):
        """Even at 500 W/W for the 4 K stage, SCD wins at the wall."""
        blade, gpu, scd_report, gpu_report = reports
        scd_pm, gpu_pm = scd_power_model(blade), gpu_power_model(gpu)
        scd_e = scd_pm.training_energy(
            scd_report, *scd_pm.estimate_training_traffic(scd_report)
        )
        gpu_e = gpu_pm.training_energy(
            gpu_report, *gpu_pm.estimate_training_traffic(gpu_report)
        )
        assert gpu_e.total_wall / scd_e.total_wall > 1.5

    def test_cooling_tax_is_visible(self, reports):
        blade, _, scd_report, _ = reports
        pm = scd_power_model(blade)
        energy = pm.training_energy(
            scd_report, *pm.estimate_training_traffic(scd_report)
        )
        assert energy.total_wall > 10 * energy.total_device

    def test_pessimistic_cooling_flips_nothing_at_device_level(self, reports):
        blade, _, scd_report, _ = reports
        harsh = scd_power_model(blade, CoolingModel(w_per_w_4k=1000.0))
        gentle = scd_power_model(blade, CoolingModel(w_per_w_4k=300.0))
        e_harsh = harsh.training_energy(
            scd_report, *harsh.estimate_training_traffic(scd_report)
        )
        e_gentle = gentle.training_energy(
            scd_report, *gentle.estimate_training_traffic(scd_report)
        )
        assert e_harsh.total_wall > e_gentle.total_wall
        assert e_harsh.total_device == pytest.approx(e_gentle.total_device)
