"""Serving-suite fixtures: isolated store + a live threaded server.

Server lifecycle (ephemeral port, clean ``server_close()``) comes from
the shared :func:`repro.serving.testing.launch_daemon` harness; this
conftest only adds the decoded-reply conveniences the suite asserts on.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import Any, Mapping

import pytest

from repro.scenarios.store import CACHE_DIR_ENV, ResultStore
from repro.serving.testing import launch_daemon


@pytest.fixture(autouse=True)
def isolated_cache_dir(tmp_path, monkeypatch):
    """Keep every test's result store off the real home directory."""
    cache_dir = tmp_path / "result-store"
    monkeypatch.setenv(CACHE_DIR_ENV, str(cache_dir))
    return cache_dir


@dataclass(frozen=True)
class HttpReply:
    """One HTTP exchange, decoded for assertions."""

    status: int
    headers: Mapping[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body.decode())

    @property
    def etag(self) -> str | None:
        return self.headers.get("ETag")


class LiveServer:
    """A running daemon on an ephemeral port plus a request helper."""

    def __init__(self, server):
        self.server = server
        self.app = server.app
        self.store = server.app.store
        host, port = server.server_address[:2]
        self.host, self.port = host, port

    def request(
        self,
        method: str,
        path: str,
        body: bytes | str | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> HttpReply:
        if isinstance(body, str):
            body = body.encode()
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            conn.request(method, path, body=body, headers=dict(headers or {}))
            response = conn.getresponse()
            return HttpReply(
                status=response.status,
                headers=dict(response.getheaders()),
                body=response.read(),
            )
        finally:
            conn.close()

    def post_json(self, path: str, payload: Any, **kw) -> HttpReply:
        return self.request("POST", path, json.dumps(payload).encode(), **kw)


@pytest.fixture
def live_server(isolated_cache_dir):
    """A daemon over the isolated store; shut down cleanly afterwards."""
    with launch_daemon(store=ResultStore(isolated_cache_dir)) as daemon:
        yield LiveServer(daemon.server)
