"""Regression tests for the serving-layer bugfix sweep.

Four separately-shipped fixes, each pinned so it cannot quietly revert:

1. ``/stats`` ``runs`` counts 304-revalidated runs too (the counter used
   to be bumped *after* the ``If-None-Match`` early return).
2. ``POST /run`` batches digest every scenario exactly once (the app's
   warmness probe and :func:`run_many` used to each hash every spec).
3. ``uptime_s`` derives from the monotonic clock — a wall-clock step
   (NTP, ``date -s``) can never make uptime jump or go negative.
4. ``Content-Length`` parsing is strict ASCII digits — bare ``int()``
   used to accept ``"+100"``, ``" 100 "`` and ``"1_0"``.
5. A *mid-compute* ConfigError is no longer a blanket 400: a registry
   (server-owned) spec failing is a 500/``compute-failed``; only a
   client-sent inline spec is blamed as 400/``invalid-scenario``.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.errors import ConfigError
from repro.scenarios import get
from repro.scenarios.batch import run_many
from repro.scenarios.store import ResultStore, scenario_digest
from repro.serving.app import ServeStats, ServingApp


@pytest.fixture
def app(tmp_path):
    application = ServingApp(ResultStore(tmp_path / "store"))
    yield application
    application.close()


class TestStatsCount304Runs:
    def test_revalidated_run_still_counts_as_a_run(self, app):
        warm = app.handle(
            "POST", "/run?wait=1", json.dumps({"scenario": "table1"}).encode()
        )
        assert warm.status == 200
        assert app.stats.runs == 1
        revalidated = app.handle(
            "POST",
            "/run",
            json.dumps({"scenario": "table1"}).encode(),
            {"If-None-Match": warm.headers["ETag"]},
        )
        assert revalidated.status == 304
        assert app.stats.runs == 2
        assert app.stats.not_modified == 1


class TestBatchDigestsOnce:
    def test_run_many_reuses_the_callers_digest_list(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        scenarios = [get("table1"), get("fig7-gpu")]
        digests = [store.digest(scenario) for scenario in scenarios]
        calls = []

        def counting(scenario, schema):
            calls.append(scenario.name)
            return scenario_digest(scenario, schema)

        monkeypatch.setattr("repro.scenarios.batch.scenario_digest", counting)
        run_many(scenarios, store=store, digests=digests)
        assert calls == []  # the caller's list was trusted, not re-hashed
        run_many(scenarios, store=store)
        assert len(calls) == len(scenarios)  # without it, hashed once each

    def test_run_many_rejects_misaligned_digests(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(ConfigError, match="align"):
            run_many(
                [get("table1")], store=store, digests=["0" * 64, "1" * 64]
            )

    def test_batch_endpoint_never_rehashes_specs(self, app, monkeypatch):
        def boom(scenario, schema):
            raise AssertionError(
                "run_many re-digested a spec the app already hashed"
            )

        monkeypatch.setattr("repro.scenarios.batch.scenario_digest", boom)
        response = app.handle(
            "POST",
            "/run?wait=1",
            json.dumps({"scenarios": ["table1", "table1"]}).encode(),
        )
        assert response.status == 200


class TestMonotonicUptime:
    def test_wall_clock_step_cannot_bend_uptime(self, monkeypatch):
        stats = ServeStats()
        base_monotonic = stats.started_monotonic
        monkeypatch.setattr(time, "monotonic", lambda: base_monotonic + 5.0)
        # A violent NTP step backwards: wall clock now reads an hour
        # *before* the process started.
        monkeypatch.setattr(time, "time", lambda: stats.started_unix - 3600.0)
        reported = stats.to_dict()
        assert reported["uptime_s"] == pytest.approx(5.0)
        # The wall-clock start stamp survives for display, unbent.
        assert reported["started_unix"] == stats.started_unix

    def test_uptime_never_negative_even_immediately(self):
        assert ServeStats().to_dict()["uptime_s"] >= 0.0


class TestStrictContentLength:
    def raw_post(self, live_server, length_value):
        """POST /run with a hand-written Content-Length header."""
        conn = http.client.HTTPConnection(
            live_server.host, live_server.port, timeout=30
        )
        try:
            conn.putrequest("POST", "/run")
            conn.putheader("Content-Length", length_value)
            conn.endheaders()
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    @pytest.mark.parametrize(
        "length_value",
        # Surrounding whitespace (" 100") never reaches the check — the
        # stdlib header parser strips it — so the cases here are the
        # embedded forms bare int() used to accept.  "²" is a latin-1
        # unicode digit: isdigit() passes, isascii() does not — the
        # exact hole the strict check closes.
        ["+100", "1_0", "0x10", "-1", "1e2", "1 0", "²"],
    )
    def test_non_digit_lengths_are_rejected(self, live_server, length_value):
        status, body = self.raw_post(live_server, length_value)
        assert status == 400
        assert body["error"] == "bad-content-length"

    def test_plain_digits_still_work(self, live_server):
        reply = live_server.post_json("/run?wait=1", {"scenario": "table1"})
        assert reply.status == 200


class TestComputeErrorClassification:
    def test_registry_spec_failing_mid_compute_is_a_500(self, app, monkeypatch):
        def boom(*args, **kwargs):
            raise ConfigError("registry recipe bug")

        monkeypatch.setattr("repro.serving.app.run_cached", boom)
        response = app.handle(
            "POST", "/run?wait=1", json.dumps({"scenario": "table1"}).encode()
        )
        assert response.status == 500
        assert response.body["error"] == "compute-failed"
        assert "Traceback" not in response.body["detail"]
        assert app.stats.server_errors == 1

    def test_inline_spec_failing_mid_compute_stays_a_400(self, app, monkeypatch):
        def boom(*args, **kwargs):
            raise ConfigError("inline spec bug")

        monkeypatch.setattr("repro.serving.app.run_cached", boom)
        spec = get("fig3c-blade-spec").to_dict()
        response = app.handle(
            "POST", "/run?wait=1", json.dumps({"scenario": spec}).encode()
        )
        assert response.status == 400
        assert response.body["error"] == "invalid-scenario"

    def test_batch_classification_follows_the_origins(self, app, monkeypatch):
        def boom(*args, **kwargs):
            raise ConfigError("mid-compute failure")

        monkeypatch.setattr("repro.serving.app.run_many", boom)
        all_registry = app.handle(
            "POST",
            "/run?wait=1",
            json.dumps({"scenarios": ["table1"]}).encode(),
        )
        assert all_registry.status == 500
        spec = get("fig3c-blade-spec").to_dict()
        with_inline = app.handle(
            "POST",
            "/run?wait=1",
            json.dumps({"scenarios": ["table1", spec]}).encode(),
        )
        assert with_inline.status == 400
        assert with_inline.body["error"] == "invalid-scenario"
