"""Fuzz/property tests for request handling — the no-500 contract.

Runs against the socket-free :class:`~repro.serving.app.ServingApp`, so
hundreds of hostile requests cost milliseconds: every response must be a
correct 4xx with a structured ``{"error", "detail"}`` JSON body; a 500
(and *any* leaked traceback) is a failure.  Seeded ``random`` only, same
style as the PR-3 property suite.
"""

from __future__ import annotations

import json
import random
import string

import pytest

from repro.scenarios import get
from repro.scenarios.store import ResultStore
from repro.serving.app import (
    MAX_BATCH_ITEMS,
    ServingApp,
    if_none_match_matches,
)

N_CASES = 300


@pytest.fixture
def app(tmp_path):
    return ServingApp(ResultStore(tmp_path / "store"))


def assert_structured_4xx(response, expected_status=None):
    assert 400 <= response.status < 500, response
    if expected_status is not None:
        assert response.status == expected_status, response
    assert isinstance(response.body, dict)
    assert set(response.body) == {"error", "detail"}
    assert "Traceback" not in response.body["detail"]
    json.dumps(response.body)  # must be serializable as-is


class TestMalformedBodies:
    def test_invalid_json_bodies(self, app):
        rng = random.Random(0xFA22)
        printable = string.printable.encode()
        for _ in range(N_CASES):
            n = rng.randint(1, 64)
            blob = bytes(rng.choice(printable) for _ in range(n))
            try:
                json.loads(blob.decode("utf-8", errors="strict"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                response = app.handle("POST", "/run", blob)
                assert_structured_4xx(response, 400)
                assert response.body["error"] in (
                    "invalid-json",
                    "invalid-request",
                )

    def test_random_binary_bodies(self, app):
        rng = random.Random(0xB17E)
        for _ in range(N_CASES):
            blob = bytes(rng.randrange(256) for _ in range(rng.randint(0, 128)))
            response = app.handle("POST", "/run", blob)
            assert response.status != 500, blob

    def test_valid_json_wrong_shapes(self, app):
        for body in (
            "null",
            "42",
            '"fig5"',
            "[]",
            '["fig5"]',
            "{}",
            '{"scenario": "x", "scenarios": []}',
            '{"scenarios": "fig5"}',
            '{"scenarios": []}',
            '{"scenario": 42}',
            '{"scenario": null}',
            '{"scenario": ["fig5"]}',
        ):
            response = app.handle("POST", "/run", body.encode())
            assert_structured_4xx(response, 400)

    def test_empty_body(self, app):
        assert_structured_4xx(app.handle("POST", "/run", b""), 400)
        assert app.handle("POST", "/run", b"").body["error"] == "empty-body"

    def test_oversize_body_is_413(self, tmp_path):
        app = ServingApp(ResultStore(tmp_path / "s"), max_body_bytes=64)
        response = app.handle("POST", "/run", b"x" * 65)
        assert_structured_4xx(response, 413)

    def test_oversize_batch_is_413(self, app):
        names = ["fig5"] * (MAX_BATCH_ITEMS + 1)
        response = app.handle(
            "POST", "/run", json.dumps({"scenarios": names}).encode()
        )
        assert_structured_4xx(response, 413)


class TestScenarioReferences:
    def test_unknown_names_are_404(self, app):
        from repro.scenarios import REGISTRY

        rng = random.Random(0x404)
        for _ in range(N_CASES):
            name = "".join(
                rng.choice(string.ascii_letters + "./\\-_~")
                for _ in range(rng.randint(1, 24))
            )
            if name in REGISTRY:  # astronomically unlikely, but exact
                continue
            response = app.handle(
                "POST", "/run", json.dumps({"scenario": name}).encode()
            )
            assert_structured_4xx(response, 404)
            assert response.body["error"] == "unknown-scenario"

    def test_path_traversal_never_reads_files(self, app, tmp_path):
        # Unlike the CLI, the wire protocol must never resolve file paths.
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(get("fig3c-blade-spec").to_json())
        for name in (str(spec_file), "../spec.json", "/etc/passwd"):
            response = app.handle(
                "POST", "/run", json.dumps({"scenario": name}).encode()
            )
            assert_structured_4xx(response, 404)

    def test_mutated_spec_dicts_never_500(self, app):
        # ?wait=1 keeps the compute in-request: a mutated inline spec that
        # only blows up mid-compute must still come back as a structured
        # 4xx (the client sent it), never a 500 — and async submission
        # would otherwise fill the job queue with hostile specs.
        rng = random.Random(0x5bec)
        base = get("fig3c-blade-spec").to_dict()
        keys = list(base)
        for _ in range(N_CASES):
            spec = json.loads(json.dumps(base))
            for _ in range(rng.randint(1, 3)):
                key = rng.choice(keys)
                mutation = rng.randrange(4)
                if mutation == 0:
                    spec.pop(key, None)
                elif mutation == 1:
                    spec[key] = rng.choice([None, 1.5, [], {}, "zzz", -1])
                elif mutation == 2:
                    spec[rng.choice(("extra", "päth", ""))] = key
                else:
                    spec[key] = {"nested": [key]}
            response = app.handle(
                "POST", "/run?wait=1", json.dumps({"scenario": spec}).encode()
            )
            if response.status != 200:
                assert_structured_4xx(response)

    def test_batch_with_one_bad_item_fails_wholesale(self, app):
        response = app.handle(
            "POST",
            "/run",
            json.dumps({"scenarios": ["fig3c-blade-spec", "nope"]}).encode(),
        )
        assert_structured_4xx(response, 404)
        assert app.store.n_entries == 0  # rejected before any compute


class TestRoutesAndMethods:
    def test_unknown_paths_404(self, app):
        rng = random.Random(0x9A7B)
        for _ in range(N_CASES):
            depth = rng.randint(1, 4)
            path = "/" + "/".join(
                "".join(
                    rng.choice(string.ascii_lowercase + "%~.")
                    for _ in range(rng.randint(1, 10))
                )
                for _ in range(depth)
            )
            response = app.handle("GET", path)
            if response.status == 200:  # /healthz etc. drawn by chance
                continue
            assert_structured_4xx(response)

    def test_wrong_methods_are_405(self, app):
        for method, path in (
            ("POST", "/healthz"),
            ("POST", "/stats"),
            ("POST", "/scenarios"),
            ("POST", "/results/" + "0" * 64),
            ("POST", "/results/" + "0" * 64 + "/csv"),
            ("PUT", "/results/" + "0" * 64 + "/text"),
            ("GET", "/run"),
            ("DELETE", "/run"),
            ("PUT", "/scenarios/fig5"),
        ):
            response = app.handle(method, path)
            assert_structured_4xx(response, 405)

    def test_bad_digests_are_400(self, app):
        rng = random.Random(0xD16E)
        for _ in range(N_CASES):
            digest = "".join(
                rng.choice(string.hexdigits + "xyz!")
                for _ in range(rng.choice((8, 40, 63, 64, 65, 128)))
            )
            response = app.handle("GET", f"/results/{digest}")
            lowered = digest.lower()
            if len(lowered) == 64 and all(
                c in "0123456789abcdef" for c in lowered
            ):
                assert_structured_4xx(response, 404)
            else:
                assert_structured_4xx(response, 400)

    def test_artifact_routes_uphold_the_no_500_contract(self, app):
        """The content-negotiation routes inherit the fuzz contract: every
        hostile digest/stage combination is a structured 4xx."""
        rng = random.Random(0xC52F)
        stages = ("csv", "text", "json", "pdf", "", "CSV", "..", "c%73v")
        for _ in range(N_CASES):
            digest = "".join(
                rng.choice(string.hexdigits + "xyz!")
                for _ in range(rng.choice((8, 63, 64, 65)))
            )
            stage = rng.choice(stages)
            response = app.handle("GET", f"/results/{digest}/{stage}")
            assert_structured_4xx(response)
            lowered = digest.lower()
            well_formed = len(lowered) == 64 and all(
                c in "0123456789abcdef" for c in lowered
            )
            if stage == "":
                # Collapses to the 2-part /results/<digest> route.
                assert response.body["error"] in (
                    "bad-digest",
                    "unknown-digest",
                )
            elif stage not in ("csv", "text"):
                assert response.status == 404
                assert response.body["error"] == "unknown-artifact"
            elif well_formed:
                assert response.body["error"] == "unknown-digest"
            else:
                assert response.body["error"] == "bad-digest"

    def test_deep_results_paths_are_404(self, app):
        response = app.handle("GET", "/results/" + "0" * 64 + "/text/extra")
        assert_structured_4xx(response, 404)

    def test_query_strings_are_ignored(self, app):
        assert app.handle("GET", "/healthz?probe=1").status == 200

    def test_internal_errors_do_not_leak_tracebacks(self, app, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("secret internal state")

        monkeypatch.setattr(app.store, "read_digest", boom)
        response = app.handle("GET", "/results/" + "0" * 64)
        assert response.status == 500
        assert response.body == {
            "error": "internal",
            "detail": "unexpected RuntimeError",
        }
        assert "secret" not in json.dumps(response.body)


class TestJobRoutes:
    """The no-500 contract extends over the async job surface."""

    def test_hostile_job_digests_are_structured_4xx(self, app):
        rng = random.Random(0x10B5)
        for _ in range(N_CASES):
            digest = "".join(
                rng.choice(string.hexdigits + "xyz!/.%")
                for _ in range(rng.choice((1, 8, 40, 63, 64, 65, 128)))
            )
            if "/" in digest:  # would split into a different route depth
                continue
            response = app.handle("GET", f"/jobs/{digest}")
            assert_structured_4xx(response)
            lowered = digest.lower()
            if len(lowered) == 64 and all(
                c in "0123456789abcdef" for c in lowered
            ):
                assert response.body["error"] == "unknown-job"
            else:
                assert response.body["error"] == "bad-digest"

    def test_wrong_methods_on_job_routes_are_405(self, app):
        for method, path in (
            ("POST", "/jobs"),
            ("DELETE", "/jobs"),
            ("POST", "/jobs/" + "0" * 64),
            ("PUT", "/jobs/" + "0" * 64),
        ):
            assert_structured_4xx(app.handle(method, path), 405)

    def test_deep_job_paths_are_404(self, app):
        response = app.handle("GET", "/jobs/" + "0" * 64 + "/extra")
        assert_structured_4xx(response, 404)

    def test_hostile_wait_queries_and_prefer_headers_never_500(self, app):
        rng = random.Random(0x3A17)
        body = json.dumps({"scenario": "nope"}).encode()
        for _ in range(N_CASES):
            query = "".join(
                rng.choice(string.printable.replace("\r", "").replace("\n", ""))
                for _ in range(rng.randint(0, 24))
            )
            prefer = "".join(
                rng.choice(string.ascii_letters + " ,;==")
                for _ in range(rng.randint(0, 16))
            )
            response = app.handle(
                "POST", f"/run?{query}", body, {"Prefer": prefer}
            )
            # Unknown scenario regardless of how the knobs are mangled.
            assert_structured_4xx(response, 404)

    def test_empty_jobs_listing_is_200(self, app):
        response = app.handle("GET", "/jobs")
        assert response.status == 200
        assert response.body["jobs"] == []


class TestEntryPutRoutes:
    """The federation write surface (``PUT``/``DELETE /results/<digest>``,
    ``GET /store/entries``) inherits the no-500 contract: random and
    tampered bodies are structured 4xx, never crashes, never stores."""

    def test_random_binary_put_bodies_never_500(self, app):
        rng = random.Random(0x9047)
        for _ in range(N_CASES):
            blob = bytes(
                rng.randrange(256) for _ in range(rng.randint(0, 256))
            )
            response = app.handle("PUT", "/results/" + "ab" * 32, blob)
            assert_structured_4xx(response, 400)
        assert app.store.n_entries == 0  # nothing hostile was stored

    def test_bad_put_digests_are_400(self, app):
        from tests.serving.test_federation import produce_entry

        _, entry = produce_entry("fuzz-bad-digest")
        rng = random.Random(0xBADD)
        for _ in range(N_CASES):
            digest = "".join(
                rng.choice(string.hexdigits + "xyz!")
                for _ in range(rng.choice((8, 40, 63, 65, 128)))
            )
            response = app.handle("PUT", f"/results/{digest}", entry)
            assert_structured_4xx(response, 400)
            assert response.body["error"] == "bad-digest"

    def test_mutated_entries_never_verify(self, app):
        # Flip one drawn key of a *valid* entry per case: whatever was
        # touched, the strict verifier answers a structured 4xx and the
        # store stays empty — the poisoned-write surface is closed.
        from tests.serving.test_federation import produce_entry

        digest, entry = produce_entry("fuzz-mutated")
        base = json.loads(entry)
        # Only the fields the verifier binds: mutating side metadata
        # (provenance…) legitimately still stores.
        verified_keys = [
            k
            for k in ("format", "schema_version", "digest", "scenario", "artifacts")
            if k in base
        ]
        rng = random.Random(0x3407)
        for _ in range(N_CASES):
            doc = json.loads(entry)
            key = rng.choice(verified_keys)
            mutation = rng.randrange(3)
            if mutation == 0:
                doc.pop(key, None)
            elif mutation == 1:
                doc[key] = rng.choice([None, 1.5, [], {}, "zzz", -1])
            else:
                doc[key] = {"nested": [key]}
            if doc == base:
                continue
            response = app.handle(
                "PUT", f"/results/{digest}", json.dumps(doc).encode()
            )
            assert_structured_4xx(response)
            assert response.body["error"] in (
                "invalid-entry",
                "digest-mismatch",
                "schema-mismatch",
            )
        assert not app.store.contains(digest)

    def test_valid_entry_round_trips(self, app):
        from tests.serving.test_federation import produce_entry

        digest, entry = produce_entry("fuzz-valid")
        response = app.handle("PUT", f"/results/{digest}", entry)
        assert response.status == 201
        assert response.body["verified"] is True
        assert app.handle("GET", f"/results/{digest}").status == 200

    def test_read_only_store_rejects_puts(self, tmp_path):
        from tests.serving.test_federation import produce_entry

        ro_app = ServingApp(ResultStore(f"ro://{tmp_path}/mirror"))
        digest, entry = produce_entry("fuzz-readonly")
        response = ro_app.handle("PUT", f"/results/{digest}", entry)
        assert_structured_4xx(response, 403)
        assert response.body["error"] == "read-only"

    def test_trusted_mode_accepts_opaque_bytes(self, tmp_path):
        app = ServingApp(ResultStore(tmp_path / "trusted"), trust_puts=True)
        rng = random.Random(0x7205)
        for index in range(32):
            digest = "%064x" % rng.getrandbits(256)
            blob = bytes(
                rng.randrange(256) for _ in range(rng.randint(1, 64))
            )
            response = app.handle("PUT", f"/results/{digest}", blob)
            assert response.status == 201, response
            assert response.body["verified"] is False
            assert app.store.n_entries == index + 1

    def test_empty_put_body_is_400(self, app):
        response = app.handle("PUT", "/results/" + "ab" * 32, b"")
        assert_structured_4xx(response, 400)

    def test_oversize_put_body_is_413(self, tmp_path):
        app = ServingApp(ResultStore(tmp_path / "s"), max_body_bytes=64)
        response = app.handle("PUT", "/results/" + "ab" * 32, b"x" * 65)
        assert_structured_4xx(response, 413)

    def test_delete_fuzz(self, app):
        rng = random.Random(0xDE1E)
        for _ in range(N_CASES):
            digest = "".join(
                rng.choice(string.hexdigits + "xyz!")
                for _ in range(rng.choice((8, 63, 64, 65)))
            )
            response = app.handle("DELETE", f"/results/{digest}")
            lowered = digest.lower()
            if len(lowered) == 64 and all(
                c in "0123456789abcdef" for c in lowered
            ):
                assert_structured_4xx(response, 404)
                assert response.body["error"] == "unknown-digest"
            else:
                assert_structured_4xx(response, 400)
                assert response.body["error"] == "bad-digest"

    def test_delete_then_get_is_404(self, app):
        from tests.serving.test_federation import produce_entry

        digest, entry = produce_entry("fuzz-delete")
        assert app.handle("PUT", f"/results/{digest}", entry).status == 201
        response = app.handle("DELETE", f"/results/{digest}")
        assert response.status == 200
        assert response.body == {"digest": digest, "deleted": True}
        assert_structured_4xx(app.handle("GET", f"/results/{digest}"), 404)

    def test_store_entries_is_get_only(self, app):
        for method in ("POST", "PUT", "DELETE"):
            assert_structured_4xx(app.handle(method, "/store/entries"), 405)

    def test_store_entries_reflects_puts(self, app):
        from tests.serving.test_federation import produce_entry

        digest, entry = produce_entry("fuzz-entries")
        assert app.handle("GET", "/store/entries").body == {
            "entries": [],
            "n_entries": 0,
            "total_bytes": 0,
        }
        app.handle("PUT", f"/results/{digest}", entry)
        listing = app.handle("GET", "/store/entries").body
        assert listing["n_entries"] == 1
        assert listing["entries"][0]["digest"] == digest
        assert listing["entries"][0]["size_bytes"] == len(entry)


class TestIfNoneMatch:
    def test_matching_forms(self):
        digest = "ab" * 32
        for header in (
            f'"{digest}"',
            digest,
            f'W/"{digest}"',
            f'"other", "{digest}"',
            "*",
        ):
            assert if_none_match_matches(header, digest), header

    def test_non_matching_forms(self):
        digest = "ab" * 32
        for header in (None, "", '"cd"', '"ab"', f'"{digest[:-1]}"'):
            assert not if_none_match_matches(header, digest), header
