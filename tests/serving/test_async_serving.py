"""App-level tests for the async cold-compute flow (202/303/429).

Cold ``POST /run`` is a job submission: these tests pin the 202 body,
the ``/jobs`` polling lifecycle through to the 303 redirect, duplicate
coalescing, queue-full 429s with ``Retry-After``, failed-job reporting,
and the ``?wait=1`` / ``Prefer: wait`` escape hatch back to the
synchronous contract.  Slow and failing computes are injected onto
``app.jobs`` so every race is deterministic; one burst test runs real
computes under real threads.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ConfigError
from repro.scenarios import get
from repro.scenarios.store import ResultStore
from repro.serving.app import ServingApp

from test_jobs import GatedCompute  # sibling test module


@pytest.fixture
def app(tmp_path):
    application = ServingApp(ResultStore(tmp_path / "store"))
    yield application
    application.close()


def post_run(app, payload, path="/run", headers=None):
    return app.handle("POST", path, json.dumps(payload).encode(), headers)


def digest_of(app, name):
    return app.store.digest(get(name))


class TestAcceptedFlow:
    def test_cold_run_returns_202_with_status_url(self, app):
        response = post_run(app, {"scenario": "table1"})
        assert response.status == 202
        body = response.body
        digest = digest_of(app, "table1")
        assert body["name"] == "table1"
        assert body["digest"] == digest
        assert body["status"] in ("queued", "running")
        assert body["status_url"] == f"/jobs/{digest}"
        assert body["coalesced"] is False
        assert response.headers["Location"] == f"/jobs/{digest}"
        assert app.stats.accepted_jobs == 1

    def test_job_completes_and_redirects_to_result(self, app):
        digest = digest_of(app, "table1")
        assert post_run(app, {"scenario": "table1"}).status == 202
        assert app.jobs.wait(digest, timeout=30)

        status = app.handle("GET", f"/jobs/{digest}")
        assert status.status == 303
        assert status.headers["Location"] == f"/results/{digest}"
        assert status.body["status"] == "done"
        assert status.body["result_url"] == f"/results/{digest}"
        assert status.body["wall_time_s"] is not None

        result = app.handle("GET", f"/results/{digest}")
        assert result.status == 200
        assert result.body["digest"] == digest
        assert result.body["artifacts"]["text"]

    def test_warm_digest_is_served_inline_not_enqueued(self, app):
        digest = digest_of(app, "table1")
        post_run(app, {"scenario": "table1"})
        assert app.jobs.wait(digest, timeout=30)
        warm = post_run(app, {"scenario": "table1"})
        assert warm.status == 200
        assert warm.body["from_cache"] is True
        assert app.jobs.counters.submitted == 1  # no second job

    def test_status_for_digest_computed_outside_the_engine(self, app):
        # A digest computed synchronously never met the job engine, but
        # /jobs/<digest> still answers "done" from store existence.
        sync = post_run(app, {"scenario": "table1"}, path="/run?wait=1")
        assert sync.status == 200
        digest = sync.body["digest"]
        status = app.handle("GET", f"/jobs/{digest}")
        assert status.status == 303
        assert status.body["status"] == "done"

    def test_unknown_and_malformed_job_digests(self, app):
        unknown = app.handle("GET", "/jobs/" + "0" * 64)
        assert unknown.status == 404
        assert unknown.body["error"] == "unknown-job"
        malformed = app.handle("GET", "/jobs/not-a-digest")
        assert malformed.status == 400
        assert malformed.body["error"] == "bad-digest"

    def test_jobs_listing_shows_inflight_and_terminal(self, app):
        compute = GatedCompute()
        app.jobs._compute = compute
        digest = digest_of(app, "table1")
        post_run(app, {"scenario": "table1"})
        assert compute.started.wait(10)
        listing = app.handle("GET", "/jobs")
        assert listing.status == 200
        assert [job["digest"] for job in listing.body["jobs"]] == [digest]
        assert listing.body["counters"]["running"] == 1
        compute.release.set()
        assert app.jobs.wait(digest, timeout=10)
        listing = app.handle("GET", "/jobs")
        assert listing.body["jobs"][0]["status"] == "done"

    def test_stats_exposes_the_jobs_block(self, app):
        digest = digest_of(app, "table1")
        post_run(app, {"scenario": "table1"})
        assert app.jobs.wait(digest, timeout=30)
        stats = app.handle("GET", "/stats")
        assert stats.status == 200
        jobs_block = stats.body["jobs"]
        assert jobs_block["submitted"] == 1
        assert jobs_block["done"] == 1
        assert stats.body["server"]["accepted_jobs"] == 1
        # The terminal hook keeps compute counters meaningful async too.
        assert stats.body["server"]["computed"] == 1


class TestCoalescing:
    def test_duplicate_cold_posts_coalesce_onto_one_job(self, app):
        compute = GatedCompute()
        app.jobs._compute = compute
        first = post_run(app, {"scenario": "table1"})
        assert first.status == 202 and first.body["coalesced"] is False
        assert compute.started.wait(10)
        for _ in range(4):
            again = post_run(app, {"scenario": "table1"})
            assert again.status == 202
            assert again.body["coalesced"] is True
        compute.release.set()
        assert app.jobs.wait(digest_of(app, "table1"), timeout=10)
        assert compute.calls == 1
        assert app.jobs.counters.submitted == 1
        assert app.jobs.counters.coalesced == 4

    def test_concurrent_burst_computes_exactly_once(self, app):
        """N truly concurrent cold POSTs for one digest → one compute."""
        calls = []
        calls_lock = threading.Lock()
        inner = app.jobs._compute

        def counting(scenario):
            with calls_lock:
                calls.append(scenario.name)
            return inner(scenario)

        app.jobs._compute = counting
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        responses = [None] * n_threads

        def hammer(i):
            barrier.wait()
            responses[i] = post_run(app, {"scenario": "table1"})

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        digest = digest_of(app, "table1")
        assert app.jobs.wait(digest, timeout=30)
        # Late arrivals may find the store already warm (200); everyone
        # else got a 202 onto the same job.  A thread that probed the
        # store before the result landed may legally submit a follow-up
        # job, but run_cached resolves it warm: however the burst
        # interleaves, the result is computed (stored) exactly once.
        assert {r.status for r in responses} <= {200, 202}
        assert len(calls) >= 1
        assert app.store.stats.puts == 1
        assert app.jobs.counters.failed == 0
        assert app.handle("GET", f"/results/{digest}").status == 200


class TestOverload:
    def make_overloaded_app(self, tmp_path):
        app = ServingApp(
            ResultStore(tmp_path / "store"), job_workers=1, max_queue=1
        )
        compute = GatedCompute()
        app.jobs._compute = compute
        return app, compute

    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        app, compute = self.make_overloaded_app(tmp_path)
        try:
            assert post_run(app, {"scenario": "table1"}).status == 202
            assert compute.started.wait(10)  # worker busy
            assert post_run(app, {"scenario": "fig7-gpu"}).status == 202
            rejected = post_run(app, {"scenario": "fig3c-blade-spec"})
            assert rejected.status == 429
            assert rejected.body["error"] == "overloaded"
            assert int(rejected.headers["Retry-After"]) >= 1
            assert app.stats.rejected_jobs == 1
            # Overload never breaks the structured-error contract.
            assert set(rejected.body) == {"error", "detail"}
            # Coalescing onto in-flight jobs still works at capacity.
            again = post_run(app, {"scenario": "fig7-gpu"})
            assert again.status == 202 and again.body["coalesced"] is True
        finally:
            compute.release.set()
            app.close()

    def test_batch_admission_is_all_or_nothing(self, tmp_path):
        app, compute = self.make_overloaded_app(tmp_path)
        try:
            assert post_run(app, {"scenario": "table1"}).status == 202
            assert compute.started.wait(10)
            # Two cold digests cannot fit a queue of one: nothing lands.
            rejected = post_run(
                app, {"scenarios": ["fig7-gpu", "fig3c-blade-spec"]}
            )
            assert rejected.status == 429
            assert "Retry-After" in rejected.headers
            assert app.jobs.counters.submitted == 1  # still just table1
            assert (
                app.handle("GET", "/jobs/" + digest_of(app, "fig7-gpu")).status
                == 404
            )
        finally:
            compute.release.set()
            app.close()


class TestFailedJobs:
    def test_registry_compute_failure_is_reported_structured(self, app):
        def boom(scenario):
            raise ConfigError("registry recipe bug")

        app.jobs._compute = boom
        digest = digest_of(app, "table1")
        assert post_run(app, {"scenario": "table1"}).status == 202
        assert app.jobs.wait(digest, timeout=10)
        status = app.handle("GET", f"/jobs/{digest}")
        assert status.status == 200  # failed is a final *status*, not 3xx
        assert status.body["status"] == "failed"
        assert status.body["error"]["error"] == "compute-failed"
        assert "registry recipe bug" in status.body["error"]["detail"]

    def test_inline_compute_failure_blames_the_client_spec(self, app):
        def boom(scenario):
            raise ConfigError("bad inline spec")

        app.jobs._compute = boom
        spec = get("fig3c-blade-spec").to_dict()
        response = post_run(app, {"scenario": spec})
        assert response.status == 202
        digest = response.body["digest"]
        assert app.jobs.wait(digest, timeout=10)
        status = app.handle("GET", f"/jobs/{digest}")
        assert status.body["status"] == "failed"
        assert status.body["error"]["error"] == "invalid-scenario"

    def test_unexpected_failure_never_leaks_internals(self, app):
        def boom(scenario):
            raise RuntimeError("secret internal state")

        app.jobs._compute = boom
        digest = digest_of(app, "table1")
        post_run(app, {"scenario": "table1"})
        assert app.jobs.wait(digest, timeout=10)
        status = app.handle("GET", f"/jobs/{digest}")
        assert status.body["error"] == {
            "error": "internal",
            "detail": "unexpected RuntimeError",
        }
        assert "secret" not in json.dumps(status.body)


class TestWaitEscapeHatch:
    def test_wait_query_preserves_the_synchronous_contract(self, tmp_path):
        sync_app = ServingApp(ResultStore(tmp_path / "sync"))
        async_app = ServingApp(ResultStore(tmp_path / "async"))
        try:
            sync = post_run(
                sync_app, {"scenario": "table1"}, path="/run?wait=1"
            )
            assert sync.status == 200
            assert sync.body["from_cache"] is False
            assert sync.headers["ETag"] == f'"{sync.body["digest"]}"'
            assert set(sync.body) == {
                "name", "digest", "from_cache", "provenance", "artifacts",
            }
            # The async path lands the identical artifacts in the store.
            accepted = post_run(async_app, {"scenario": "table1"})
            assert accepted.status == 202
            digest = accepted.body["digest"]
            assert digest == sync.body["digest"]
            assert async_app.jobs.wait(digest, timeout=30)
            result = async_app.handle("GET", f"/results/{digest}")
            assert result.body["artifacts"] == sync.body["artifacts"]
        finally:
            sync_app.close()
            async_app.close()

    def test_warm_responses_are_byte_identical_with_and_without_wait(
        self, app
    ):
        digest = digest_of(app, "table1")
        post_run(app, {"scenario": "table1"})
        assert app.jobs.wait(digest, timeout=30)
        plain = post_run(app, {"scenario": "table1"})
        waited = post_run(app, {"scenario": "table1"}, path="/run?wait=1")
        assert plain.status == waited.status == 200
        assert plain.body_bytes() == waited.body_bytes()

    def test_prefer_wait_header(self, app):
        response = post_run(
            app, {"scenario": "table1"}, headers={"Prefer": "wait"}
        )
        assert response.status == 200
        assert response.body["from_cache"] is False

    def test_wait_zero_means_async(self, app):
        response = post_run(
            app, {"scenario": "table1"}, path="/run?wait=0"
        )
        assert response.status == 202

    def test_wait_batch_returns_artifacts_inline(self, app):
        response = post_run(
            app,
            {"scenarios": ["table1", "table1"]},
            path="/run?wait=1",
        )
        assert response.status == 200
        assert response.body["stats"]["n_computed"] == 1
        assert response.body["stats"]["n_deduplicated"] == 1
        assert response.body["entries"][0]["artifacts"]["text"]


class TestAsyncBatch:
    def test_mixed_batch_returns_a_status_sheet(self, app):
        # Warm up table1 synchronously; fig7-gpu stays cold.
        assert (
            post_run(app, {"scenario": "table1"}, path="/run?wait=1").status
            == 200
        )
        compute = GatedCompute()
        app.jobs._compute = compute
        response = post_run(app, {"scenarios": ["table1", "fig7-gpu"]})
        assert response.status == 202
        warm_entry, cold_entry = response.body["entries"]
        assert warm_entry["name"] == "table1"
        assert warm_entry["status"] == "done"
        assert warm_entry["result_url"].startswith("/results/")
        assert cold_entry["name"] == "fig7-gpu"
        assert cold_entry["status"] in ("queued", "running")
        assert cold_entry["status_url"].startswith("/jobs/")
        assert response.body["stats"] == {
            "n_items": 2,
            "n_warm": 1,
            "n_jobs": 1,
        }
        compute.release.set()
        digest = digest_of(app, "fig7-gpu")
        assert app.jobs.wait(digest, timeout=10)
        assert app.handle("GET", f"/jobs/{digest}").status == 303

    def test_batch_duplicates_coalesce_onto_one_job(self, app):
        compute = GatedCompute()
        app.jobs._compute = compute
        response = post_run(
            app, {"scenarios": ["table1", "table1", "table1"]}
        )
        assert response.status == 202
        assert response.body["stats"]["n_jobs"] == 1
        assert app.jobs.counters.submitted == 1
        assert app.jobs.counters.coalesced == 2
        compute.release.set()
        assert app.jobs.wait(digest_of(app, "table1"), timeout=10)
