"""Federation over the wire: ring-routed daemons, verified PUT, gzip.

The acceptance scenario from the fabric design: N daemons plus a
``ring://`` tier make a sharded cluster.  A digest owned by a *remote*
peer is served by the local daemon on first request and promoted into
the local hot tiers — proven here with per-tier counters read back over
``GET /stats``, i.e. entirely through the public HTTP surface.

Also pinned here: the write half of the federation protocol —
``PUT /results/<digest>`` digest-verifies bodies against the canonical
spec hash (structured 4xx on every tamper mode) — and the gzip wire
contract both directions.
"""

from __future__ import annotations

import gzip
import json

from repro.scenarios.backends import HashRingBackend, InMemoryBackend
from repro.scenarios.store import ResultStore
from tests.scenarios.test_backends import tiny_scenario


def produce_entry(
    name: str = "federation-blade", text: str = "federated"
) -> tuple[str, bytes]:
    """(digest, entry bytes) exactly as a producer store would write them."""
    backend = InMemoryBackend()
    store = ResultStore(backend=backend)
    scenario = tiny_scenario(name)
    store.put(
        scenario,
        {"raw": {"series": {}, "tag": name}, "text": text, "csv": None},
    )
    digest = store.digest(scenario)
    return digest, backend.peek(digest)


class TestRingFederation:
    def test_remote_digest_served_locally_then_goes_hot(
        self, live_daemon, tmp_path
    ):
        # Two strict peer daemons + a local daemon whose coldest tier is
        # the ring over them: --cache mem://,file://...,ring://a;b
        peer_a = live_daemon()
        peer_b = live_daemon()
        local = live_daemon(
            cache=(
                f"mem://,file://{tmp_path}/local,"
                f"ring://{peer_a.host}:{peer_a.port};"
                f"{peer_b.host}:{peer_b.port}"
            )
        )
        digest, entry = produce_entry()
        ring = local.store.backend.tiers[2]
        assert isinstance(ring, HashRingBackend)

        # Seed the cluster through the ring itself: a strict, verified
        # PUT lands the entry on the owning peer only.
        ring.write(digest, entry)
        owner_port = int(ring.ring.primary(digest).rsplit(":", 1)[1])
        owner = peer_a if owner_port == peer_a.port else peer_b
        other = peer_b if owner is peer_a else peer_a
        assert owner.store.contains(digest)
        assert not other.store.contains(digest)
        assert not local.store.backend.tiers[0].contains(digest)

        def tier_counters(index: int) -> dict:
            stats = local.request("GET", "/stats").json()
            return stats["store"]["backend"]["tiers"][index]["counters"]

        # First read: local tiers miss, the ring answers, and the read
        # pulls the entry up into the file and mem tiers.
        first = local.request("GET", f"/results/{digest}")
        assert first.status == 200
        assert first.json()["digest"] == digest
        mem_first = tier_counters(0)
        ring_first = tier_counters(2)
        assert ring_first["hits"] == 1
        assert local.store.backend.tiers[0].contains(digest)
        assert local.store.backend.tiers[1].contains(digest)

        # Second read: the mem tier answers; the ring is never asked.
        second = local.request("GET", f"/results/{digest}")
        assert second.status == 200
        assert second.body == first.body
        assert tier_counters(0)["hits"] == mem_first["hits"] + 1
        assert tier_counters(2) == ring_first

    def test_replicated_writes_land_on_every_owner(self, live_daemon):
        peer_a = live_daemon()
        peer_b = live_daemon()
        ring = HashRingBackend(
            [
                f"{peer_a.host}:{peer_a.port}",
                f"{peer_b.host}:{peer_b.port}",
            ],
            replicas=2,
        )
        digest, entry = produce_entry("federation-replicated")
        ring.write(digest, entry)
        assert peer_a.store.contains(digest)
        assert peer_b.store.contains(digest)
        assert ring.read(digest) == entry
        # Invalidation fans out to the whole cluster.
        assert ring.delete(digest)
        assert not peer_a.store.contains(digest)
        assert not peer_b.store.contains(digest)

    def test_ring_read_heals_the_owning_peer(self, live_daemon):
        # The entry starts on the *secondary* owner (as after a
        # membership change); a ring read writes it back to the primary.
        peer_a = live_daemon()
        peer_b = live_daemon()
        ring = HashRingBackend(
            [
                f"{peer_a.host}:{peer_a.port}",
                f"{peer_b.host}:{peer_b.port}",
            ],
            replicas=2,
        )
        digest, entry = produce_entry("federation-heal")
        primary_port = int(ring.ring.primary(digest).rsplit(":", 1)[1])
        primary = peer_a if primary_port == peer_a.port else peer_b
        secondary = peer_b if primary is peer_a else peer_a
        secondary.store.backend.write(digest, entry)
        assert ring.read(digest) == entry
        assert primary.store.contains(digest)
        assert ring.counters.promotions == 1


class TestVerifiedPutWire:
    """Strict ``PUT /results/<digest>``: every tamper mode is a 4xx."""

    def test_valid_entry_is_stored_verified(self, live_daemon):
        daemon = live_daemon()
        digest, entry = produce_entry("federation-put")
        reply = daemon.request("PUT", f"/results/{digest}", body=entry)
        assert reply.status == 201
        payload = reply.json()
        assert payload == {
            "digest": digest,
            "stored": True,
            "verified": True,
            "size_bytes": len(entry),
        }
        assert reply.headers["etag"] == f'"{digest}"'
        assert daemon.request("GET", f"/results/{digest}").status == 200

    def test_wrong_address_is_a_digest_mismatch(self, live_daemon):
        daemon = live_daemon()
        _, entry = produce_entry("federation-wrong-address")
        reply = daemon.request("PUT", "/results/" + "ab" * 32, body=entry)
        assert reply.status == 400
        assert reply.json()["error"] == "digest-mismatch"
        assert not daemon.store.contains("ab" * 32)

    def test_tampered_spec_is_a_digest_mismatch(self, live_daemon):
        # Body whose digest field matches the URL but whose spec no
        # longer hashes to it — the poisoned-cache attack PUT must stop.
        daemon = live_daemon()
        digest, entry = produce_entry("federation-tampered")
        doc = json.loads(entry)
        doc["scenario"]["name"] = "somebody-else"
        reply = daemon.request(
            "PUT", f"/results/{digest}", body=json.dumps(doc).encode()
        )
        assert reply.status == 400
        assert reply.json()["error"] == "digest-mismatch"
        assert not daemon.store.contains(digest)

    def test_foreign_schema_version_is_a_409(self, live_daemon):
        daemon = live_daemon()
        digest, entry = produce_entry("federation-schema")
        doc = json.loads(entry)
        doc["schema_version"] = 999
        reply = daemon.request(
            "PUT", f"/results/{digest}", body=json.dumps(doc).encode()
        )
        assert reply.status == 409
        assert reply.json()["error"] == "schema-mismatch"

    def test_non_entry_bodies_are_invalid_entry(self, live_daemon):
        daemon = live_daemon()
        for body in (b"not json", b'{"format": "something-else"}', b"[]"):
            reply = daemon.request("PUT", "/results/" + "cd" * 32, body=body)
            assert reply.status == 400
            assert reply.json()["error"] == "invalid-entry"

    def test_trusted_mode_stores_opaque_bytes(self, live_daemon):
        # --trust-puts is the mirror/conformance mode: bytes are opaque,
        # the *reading* front-end owns validation.
        daemon = live_daemon(trust_puts=True)
        digest = "ef" * 32
        reply = daemon.request(
            "PUT", f"/results/{digest}", body=b'{"torn": tru'
        )
        assert reply.status == 201
        assert reply.json()["verified"] is False
        assert daemon.store.backend.peek(digest) == b'{"torn": tru'


class TestGzipWire:
    def test_large_responses_compress_when_accepted(self, live_daemon):
        daemon = live_daemon()
        digest, entry = produce_entry("federation-gzip", text="x" * 4000)
        assert daemon.request("PUT", f"/results/{digest}", body=entry).status == 201
        plain = daemon.request("GET", f"/results/{digest}")
        assert "content-encoding" not in plain.headers
        packed = daemon.request(
            "GET",
            f"/results/{digest}",
            headers={"Accept-Encoding": "gzip"},
        )
        assert packed.status == 200
        assert packed.headers["content-encoding"] == "gzip"
        assert "Accept-Encoding" in packed.headers["vary"]
        assert len(packed.body) < len(plain.body)
        assert gzip.decompress(packed.body) == plain.body

    def test_small_responses_stay_identity(self, live_daemon):
        daemon = live_daemon()
        reply = daemon.request(
            "GET", "/healthz", headers={"Accept-Encoding": "gzip"}
        )
        assert reply.status == 200
        assert "content-encoding" not in reply.headers

    def test_q_zero_opts_out(self, live_daemon):
        daemon = live_daemon()
        digest, entry = produce_entry("federation-qzero", text="x" * 4000)
        daemon.request("PUT", f"/results/{digest}", body=entry)
        reply = daemon.request(
            "GET",
            f"/results/{digest}",
            headers={"Accept-Encoding": "gzip;q=0"},
        )
        assert reply.status == 200
        assert "content-encoding" not in reply.headers

    def test_gzipped_put_is_inflated_then_verified(self, live_daemon):
        daemon = live_daemon()
        digest, entry = produce_entry("federation-gzput", text="x" * 4000)
        reply = daemon.request(
            "PUT",
            f"/results/{digest}",
            body=gzip.compress(entry),
            headers={"Content-Encoding": "gzip"},
        )
        assert reply.status == 201
        assert reply.json()["verified"] is True
        assert reply.json()["size_bytes"] == len(entry)

    def test_garbage_gzip_body_is_a_400(self, live_daemon):
        daemon = live_daemon()
        reply = daemon.request(
            "PUT",
            "/results/" + "ab" * 32,
            body=b"\x1f\x8b\x08\x00 definitely not deflate",
            headers={"Content-Encoding": "gzip"},
        )
        assert reply.status == 400
        assert reply.json()["error"] == "bad-encoding"

    def test_truncated_gzip_body_is_a_400(self, live_daemon):
        daemon = live_daemon()
        _, entry = produce_entry("federation-truncated")
        reply = daemon.request(
            "PUT",
            "/results/" + "ab" * 32,
            body=gzip.compress(entry)[:-6],
            headers={"Content-Encoding": "gzip"},
        )
        assert reply.status == 400
        assert reply.json()["error"] == "bad-encoding"

    def test_gzip_bomb_is_a_413(self, live_daemon):
        daemon = live_daemon(max_body_bytes=2048)
        bomb = gzip.compress(b"\0" * 1_000_000)
        assert len(bomb) < 2048  # small on the wire, huge inflated
        reply = daemon.request(
            "PUT",
            "/results/" + "ab" * 32,
            body=bomb,
            headers={"Content-Encoding": "gzip"},
        )
        assert reply.status == 413
        assert reply.json()["error"] == "payload-too-large"

    def test_unknown_content_encoding_is_a_415(self, live_daemon):
        daemon = live_daemon()
        reply = daemon.request(
            "PUT",
            "/results/" + "ab" * 32,
            body=b"whatever",
            headers={"Content-Encoding": "br"},
        )
        assert reply.status == 415
        assert reply.json()["error"] == "unsupported-encoding"
