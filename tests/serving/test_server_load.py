"""Concurrency/load tests: many client threads against the live daemon.

The warm path is the production claim — pure file reads, safe under
parallel clients — so the load mix hammers one warm digest from N threads
while cold requests, revalidations and stats probes interleave.  Every
response must be a 200/304 with a body identical to the single-client
answer; the store must stay intact and self-consistent afterwards.
"""

from __future__ import annotations

import json
import random
from concurrent.futures import ThreadPoolExecutor

N_CLIENTS = 8
N_REQUESTS_PER_CLIENT = 12

SCENARIO = "fig3c-blade-spec"


class TestWarmLoad:
    def test_parallel_warm_runs_agree_byte_for_byte(self, live_server):
        reference = live_server.post_json("/run?wait=1", {"scenario": SCENARIO})
        assert reference.status == 200

        def client(_):
            replies = []
            for _ in range(N_REQUESTS_PER_CLIENT):
                replies.append(
                    live_server.post_json("/run?wait=1", {"scenario": SCENARIO})
                )
            return replies

        with ThreadPoolExecutor(N_CLIENTS) as pool:
            all_replies = [
                reply
                for batch in pool.map(client, range(N_CLIENTS))
                for reply in batch
            ]

        assert len(all_replies) == N_CLIENTS * N_REQUESTS_PER_CLIENT
        for reply in all_replies:
            assert reply.status == 200
            assert reply.json()["from_cache"] is True
            assert reply.json()["artifacts"] == reference.json()["artifacts"]
        assert live_server.store.n_entries == 1

    def test_concurrent_cold_requests_compute_once_each(self, live_server):
        """Distinct cold digests raced from many threads: every response is
        correct and the store ends with exactly one entry per digest."""
        names = [SCENARIO, "table1", "fig2b-datalink", "pcl-flow"]

        def client(seed):
            rng = random.Random(seed)
            picks = [rng.choice(names) for _ in range(6)]
            return [
                (
                    name,
                    live_server.post_json("/run?wait=1", {"scenario": name}),
                )
                for name in picks
            ]

        with ThreadPoolExecutor(N_CLIENTS) as pool:
            outcomes = [
                item for batch in pool.map(client, range(N_CLIENTS))
                for item in batch
            ]

        by_name: dict[str, bytes] = {}
        for name, reply in outcomes:
            assert reply.status == 200, (name, reply.body)
            artifacts = json.dumps(reply.json()["artifacts"], sort_keys=True)
            by_name.setdefault(name, artifacts)
            assert by_name[name] == artifacts, f"{name} answers diverged"
        assert live_server.store.n_entries == len(names)

    def test_mixed_traffic_with_revalidation_and_stats(self, live_server):
        cold = live_server.post_json("/run?wait=1", {"scenario": SCENARIO})
        digest = cold.json()["digest"]
        etag = cold.etag

        def client(seed):
            rng = random.Random(seed)
            for _ in range(N_REQUESTS_PER_CLIENT):
                kind = rng.randrange(4)
                if kind == 0:
                    reply = live_server.post_json(
                        "/run",
                        {"scenario": SCENARIO},
                        headers={"If-None-Match": etag},
                    )
                    assert reply.status == 304 and reply.body == b""
                elif kind == 1:
                    reply = live_server.request("GET", f"/results/{digest}")
                    assert reply.status == 200
                    assert reply.json()["digest"] == digest
                elif kind == 2:
                    reply = live_server.request("GET", "/stats")
                    assert reply.status == 200
                    counters = reply.json()["store"]["counters"]
                    assert counters["lookups"] == (
                        counters["hits"] + counters["misses"]
                    )
                else:
                    reply = live_server.post_json(
                        "/run", {"scenario": "definitely-not-registered"}
                    )
                    assert reply.status == 404
            return True

        with ThreadPoolExecutor(N_CLIENTS) as pool:
            assert all(pool.map(client, range(N_CLIENTS)))

        stats = live_server.request("GET", "/stats").json()
        assert stats["server"]["not_modified"] > 0
        assert stats["server"]["client_errors"] > 0
        assert stats["server"]["server_errors"] == 0
        # The hammered entry survived it all, readable and valid.
        assert live_server.store.read_digest(digest) is not None
