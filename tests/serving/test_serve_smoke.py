"""Tier-1 serve smoke test: boot, one cold + one warm request, clean stop.

The cheapest end-to-end pass through the whole serving stack (CLI-built
server → ThreadingHTTPServer → app → store), kept to one tiny table
scenario so it stays a smoke test.  Also pins the ``python -m repro
serve`` argument surface so the flags named in the docs cannot drift.
"""

from __future__ import annotations

import threading

from repro.cli import build_parser
from repro.scenarios.store import ResultStore
from repro.serving import create_server


def test_serve_smoke(tmp_path):
    store = ResultStore(tmp_path / "cache", max_entries=16)
    server = create_server(port=0, store=store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        import http.client
        import json

        host, port = server.server_address[:2]

        def post_run():
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                conn.request(
                    "POST", "/run?wait=1", json.dumps({"scenario": "table1"})
                )
                response = conn.getresponse()
                return response.status, json.loads(response.read())
            finally:
                conn.close()

        cold_status, cold = post_run()
        assert cold_status == 200 and cold["from_cache"] is False
        warm_status, warm = post_run()
        assert warm_status == 200 and warm["from_cache"] is True
        assert warm["artifacts"] == cold["artifacts"]
        assert store.n_entries == 1
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
    assert not thread.is_alive()


def test_workers_arm_a_thread_safe_fanout_start_method(
    tmp_path, monkeypatch
):
    """A daemon with --workers must not fork its multithreaded process."""
    from repro.analysis import sweep
    from repro.serving import ServingApp

    monkeypatch.setattr(sweep, "FANOUT_START_METHOD", None)
    ServingApp(ResultStore(tmp_path), workers=2)
    assert sweep.FANOUT_START_METHOD == "forkserver"

    # An operator's explicit choice is never overridden.
    monkeypatch.setattr(sweep, "FANOUT_START_METHOD", "spawn")
    ServingApp(ResultStore(tmp_path), workers=2)
    assert sweep.FANOUT_START_METHOD == "spawn"


def test_create_server_rejects_cache_url_plus_store_knobs(tmp_path):
    """Explicit store knobs are never silently discarded next to --cache."""
    import pytest

    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="mutually exclusive"):
        create_server(
            port=0, cache="mem://", max_cache_bytes=1_000_000
        )
    with pytest.raises(ConfigError, match="mutually exclusive"):
        create_server(port=0, cache="mem://", cache_dir=tmp_path)
    # Explicit zero caps are real knobs too — truthiness must not let
    # them slip through as "unset".
    with pytest.raises(ConfigError, match="mutually exclusive"):
        create_server(port=0, cache="mem://", max_cache_entries=0)
    # A ready-built store and a cache URL are two different answers to
    # the same question.
    with pytest.raises(ConfigError, match="mutually exclusive"):
        create_server(
            port=0, store=ResultStore(tmp_path / "s"), cache="mem://"
        )


def test_serve_cli_flags_parse():
    args = build_parser().parse_args(
        [
            "serve",
            "--port", "0",
            "--workers", "2",
            "--cache-dir", "/tmp/x",
            "--max-cache-bytes", "1000000",
            "--max-cache-entries", "64",
            "--job-workers", "4",
            "--max-queue", "16",
            "--shard",
            "--verbose",
        ]
    )
    assert args.port == 0
    assert args.workers == 2
    assert args.cache_dir == "/tmp/x"
    assert args.max_cache_bytes == 1_000_000
    assert args.max_cache_entries == 64
    assert args.job_workers == 4
    assert args.max_queue == 16
    assert args.shard is True
    assert args.quiet is False
    assert args.fn.__name__ == "_cmd_serve"
