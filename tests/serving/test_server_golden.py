"""End-to-end golden tests: a real ThreadingHTTPServer on an ephemeral port.

The serving contract in the acceptance criteria, verified over actual
sockets: a warm ``POST /run`` performs zero kernel timings and returns
artifacts byte-identical to the CLI's ``python -m repro run`` output, a
repeat request carrying the returned ``ETag`` is answered ``304``, and
``GET /results/<digest>`` replays the stored entry.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.core.timing_cache import default_timing_cache
from repro.parallel.mapper import default_mapping_cache
from repro.scenarios import Scenario, get, scenario_digest

CHEAP_TABLE = "fig3c-blade-spec"
CHEAP_POINT = "fig7-gpu"


class TestHealthAndListing:
    def test_healthz(self, live_server):
        reply = live_server.request("GET", "/healthz")
        assert reply.status == 200
        assert reply.json()["status"] == "ok"

    def test_scenarios_lists_the_registry(self, live_server):
        reply = live_server.request("GET", "/scenarios")
        assert reply.status == 200
        listed = {row["name"]: row for row in reply.json()["scenarios"]}
        assert CHEAP_POINT in listed and "fig5" in listed
        assert listed[CHEAP_POINT]["digest"] == scenario_digest(
            get(CHEAP_POINT)
        )

    def test_single_scenario_spec_round_trips(self, live_server):
        reply = live_server.request("GET", f"/scenarios/{CHEAP_POINT}")
        assert reply.status == 200
        rebuilt = Scenario.from_dict(reply.json()["spec"])
        assert rebuilt == get(CHEAP_POINT)
        assert reply.etag == f'"{scenario_digest(rebuilt)}"'

    def test_unknown_scenario_404s(self, live_server):
        reply = live_server.request("GET", "/scenarios/fig99")
        assert reply.status == 404
        assert reply.json()["error"] == "unknown-scenario"


class TestRunGolden:
    def test_warm_run_is_compute_free_and_byte_identical_to_cli(
        self, live_server, tmp_path
    ):
        # Cold: the server computes and stores.
        cold = live_server.post_json("/run?wait=1", {"scenario": CHEAP_POINT})
        assert cold.status == 200
        assert cold.json()["from_cache"] is False

        # CLI artifacts for the same scenario (served from the same store).
        out_dir = tmp_path / "cli-artifacts"
        assert main(["run", CHEAP_POINT, "--out", str(out_dir)]) == 0

        # Warm: zero kernel timings, zero mappings.
        timing, mapping = default_timing_cache(), default_mapping_cache()
        timing_before = (timing.hits, timing.misses)
        mapping_before = (mapping.hits, mapping.misses)
        warm = live_server.post_json("/run?wait=1", {"scenario": CHEAP_POINT})
        assert warm.status == 200
        assert warm.json()["from_cache"] is True
        assert (timing.hits, timing.misses) == timing_before
        assert (mapping.hits, mapping.misses) == mapping_before

        # Byte-identical artifacts: HTTP payload == CLI-written files.
        artifacts = warm.json()["artifacts"]
        raw_bytes = (json.dumps(artifacts["raw"], indent=2) + "\n").encode()
        name = CHEAP_POINT
        assert raw_bytes == (out_dir / f"{name}_raw.json").read_bytes()
        text_bytes = (artifacts["text"] + "\n").encode()
        assert text_bytes == (out_dir / f"{name}.txt").read_bytes()
        assert artifacts["csv"] is None
        # ... and the warm replay's artifacts equal the cold compute's.
        assert artifacts == cold.json()["artifacts"]

    def test_grid_scenario_csv_matches_cli(self, live_server, tmp_path):
        reply = live_server.post_json("/run?wait=1", {"scenario": "fig6"})
        assert reply.status == 200
        out_dir = tmp_path / "cli"
        assert main(["run", "fig6", "--out", str(out_dir)]) == 0
        csv = reply.json()["artifacts"]["csv"]
        assert csv is not None
        assert csv.encode() == (out_dir / "fig6.csv").read_bytes()

    def test_repeat_with_etag_is_304(self, live_server):
        cold = live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        assert cold.status == 200 and cold.etag

        timing = default_timing_cache()
        before = (timing.hits, timing.misses)
        revalidated = live_server.post_json(
            "/run",
            {"scenario": CHEAP_TABLE},
            headers={"If-None-Match": cold.etag},
        )
        assert revalidated.status == 304
        assert revalidated.body == b""
        assert revalidated.etag == cold.etag
        assert (timing.hits, timing.misses) == before

    def test_inline_spec_shares_the_registry_content_address(
        self, live_server
    ):
        live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        inline = live_server.post_json(
            "/run", {"scenario": get(CHEAP_TABLE).to_dict()}
        )
        assert inline.status == 200
        assert inline.json()["from_cache"] is True
        assert inline.json()["digest"] == scenario_digest(get(CHEAP_TABLE))


class TestResultsByDigest:
    def test_stored_entry_replays(self, live_server):
        run = live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        digest = run.json()["digest"]
        reply = live_server.request("GET", f"/results/{digest}")
        assert reply.status == 200
        entry = reply.json()
        assert entry["digest"] == digest
        assert entry["artifacts"] == run.json()["artifacts"]
        assert entry["provenance"]["schema_version"] == 1
        assert Scenario.from_dict(entry["scenario"]).name == CHEAP_TABLE

    def test_etag_revalidation(self, live_server):
        run = live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        digest = run.json()["digest"]
        lookups_before = live_server.store.stats.lookups
        reply = live_server.request(
            "GET",
            f"/results/{digest}",
            headers={"If-None-Match": f'"{digest}"'},
        )
        assert reply.status == 304 and reply.body == b""
        # The 304 is a stat-only existence probe — no entry read/parse.
        assert live_server.store.stats.lookups == lookups_before

    def test_unknown_digest_404s(self, live_server):
        reply = live_server.request("GET", "/results/" + "0" * 64)
        assert reply.status == 404
        assert reply.json()["error"] == "unknown-digest"

    def test_malformed_digest_400s(self, live_server):
        reply = live_server.request("GET", "/results/nothex")
        assert reply.status == 400
        assert reply.json()["error"] == "bad-digest"


class TestBatchRun:
    def test_batch_dedups_and_serves_from_store(self, live_server):
        live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        reply = live_server.post_json(
            "/run?wait=1",
            {"scenarios": [CHEAP_TABLE, "table1", CHEAP_TABLE]},
        )
        assert reply.status == 200
        body = reply.json()
        assert [e["name"] for e in body["entries"]] == [
            CHEAP_TABLE,
            "table1",
            CHEAP_TABLE,
        ]
        assert body["entries"][0]["from_cache"] is True
        assert body["entries"][2]["deduplicated"] is True
        assert body["stats"]["n_unique"] == 2
        assert body["stats"]["n_computed"] == 1

    def test_stats_reflect_traffic(self, live_server):
        live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        reply = live_server.request("GET", "/stats")
        assert reply.status == 200
        stats = reply.json()
        assert stats["server"]["runs"] >= 2
        assert stats["server"]["served_from_store"] >= 1
        assert stats["server"]["computed"] >= 1
        assert stats["store"]["n_entries"] == 1
        assert stats["store"]["provenance"]["entries_with_provenance"] == 1
        assert stats["store"]["provenance"]["entries_missing_provenance"] == 0

    def test_stats_never_report_the_pre_provenance_sentinel(
        self, live_server
    ):
        """A PR-3-era entry must not leak a fabricated 1970 timestamp."""
        live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        live_server.post_json("/run?wait=1", {"scenario": "table1"})
        # Strip one entry's provenance, as a pre-GC-era writer would have.
        path = live_server.store.path_for(get(CHEAP_TABLE))
        entry = json.loads(path.read_text())
        del entry["provenance"]
        path.write_text(json.dumps(entry))

        block = live_server.request("GET", "/stats").json()["store"][
            "provenance"
        ]
        assert block["entries_scanned"] == 2
        assert block["entries_missing_provenance"] == 1
        assert block["entries_with_provenance"] == 1
        # Over stamped entries only — not the 0.0 age-dating sentinel.
        assert block["oldest_created_unix"] > 1e9
        assert block["oldest_created_unix"] == block["newest_created_unix"]

    def test_warm_batch_streams_past_a_held_compute_lock(self, live_server):
        """An all-warm batch is pure file reads; it must not queue behind
        someone's cold compute."""
        live_server.post_json(
            "/run?wait=1", {"scenarios": [CHEAP_TABLE, "table1"]}
        )
        with live_server.app._compute_lock:  # a cold compute in flight
            reply = live_server.post_json(
                "/run", {"scenarios": [CHEAP_TABLE, "table1"]}
            )
        assert reply.status == 200
        assert all(e["from_cache"] for e in reply.json()["entries"])


class TestContentNegotiation:
    """The ``/results/<digest>/csv|text`` artifact routes: correct media
    types, bytes identical to the CLI-written artifact files, same
    ETag/304 contract as the JSON route."""

    def test_text_artifact_matches_cli_bytes(self, live_server, tmp_path):
        run = live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        digest = run.json()["digest"]
        out_dir = tmp_path / "cli"
        assert main(["run", CHEAP_TABLE, "--out", str(out_dir)]) == 0

        reply = live_server.request("GET", f"/results/{digest}/text")
        assert reply.status == 200
        assert reply.headers["Content-Type"] == "text/plain; charset=utf-8"
        assert reply.etag == f'"{digest}"'
        assert reply.body == (out_dir / f"{CHEAP_TABLE}.txt").read_bytes()

    def test_csv_artifact_matches_cli_bytes(self, live_server, tmp_path):
        run = live_server.post_json("/run?wait=1", {"scenario": "fig6"})
        digest = run.json()["digest"]
        out_dir = tmp_path / "cli"
        assert main(["run", "fig6", "--out", str(out_dir)]) == 0

        reply = live_server.request("GET", f"/results/{digest}/csv")
        assert reply.status == 200
        assert reply.headers["Content-Type"] == "text/csv; charset=utf-8"
        assert reply.etag == f'"{digest}"'
        assert reply.body == (out_dir / "fig6.csv").read_bytes()

    def test_table_scenario_has_no_csv_representation(self, live_server):
        run = live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        digest = run.json()["digest"]
        reply = live_server.request("GET", f"/results/{digest}/csv")
        assert reply.status == 404
        assert reply.json()["error"] == "no-csv-artifact"

    def test_etag_revalidation_on_artifact_routes(self, live_server):
        run = live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        digest = run.json()["digest"]
        reply = live_server.request(
            "GET",
            f"/results/{digest}/text",
            headers={"If-None-Match": f'"{digest}"'},
        )
        assert reply.status == 304
        assert reply.body == b""
        assert reply.etag == f'"{digest}"'
        # A representation that does not exist must never 304: this table
        # scenario has no CSV, so a conditional GET for it is still the
        # 404 the unconditional GET would be.
        reply = live_server.request(
            "GET",
            f"/results/{digest}/csv",
            headers={"If-None-Match": f'"{digest}"'},
        )
        assert reply.status == 404
        assert reply.json()["error"] == "no-csv-artifact"

    def test_unknown_stage_and_digest_are_structured_errors(
        self, live_server
    ):
        run = live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        digest = run.json()["digest"]
        reply = live_server.request("GET", f"/results/{digest}/pdf")
        assert reply.status == 404
        assert reply.json()["error"] == "unknown-artifact"
        reply = live_server.request("GET", "/results/" + "0" * 64 + "/text")
        assert reply.status == 404
        assert reply.json()["error"] == "unknown-digest"
        reply = live_server.request("GET", "/results/nothex/text")
        assert reply.status == 400
        assert reply.json()["error"] == "bad-digest"


class TestHttpEdgeCases:
    def test_chunked_upload_is_411_and_closes(self, live_server):
        import http.client

        conn = http.client.HTTPConnection(
            live_server.host, live_server.port, timeout=30
        )
        try:
            conn.putrequest("POST", "/run")
            conn.putheader("Transfer-Encoding", "chunked")
            conn.endheaders()
            conn.send(b"5\r\n{\"a\":\r\n0\r\n\r\n")
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 411
            assert body["error"] == "length-required"
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_head_healthz_answers_like_get_without_a_body(self, live_server):
        """Load-balancer HEAD probes must see 200, not a stdlib HTML 501."""
        reply = live_server.request("HEAD", "/healthz")
        assert reply.status == 200
        assert reply.headers["Content-Type"] == "application/json"
        assert int(reply.headers["Content-Length"]) > 0
        assert reply.body == b""  # headers promised, body withheld

    def test_other_verbs_get_structured_json_405(self, live_server):
        for method in ("DELETE", "PUT", "PATCH", "OPTIONS"):
            reply = live_server.request(method, "/run")
            assert reply.status == 405, method
            assert reply.headers["Content-Type"] == "application/json"
            assert reply.json()["error"] == "method-not-allowed"

    def test_uppercase_digest_url_revalidates_against_lowercase_etag(
        self, live_server
    ):
        run = live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        digest = run.json()["digest"]
        reply = live_server.request(
            "GET",
            f"/results/{digest.upper()}",
            headers={"If-None-Match": f'"{digest}"'},
        )
        assert reply.status == 304
        assert reply.etag == f'"{digest}"'  # lowercase, as issued

    def test_get_with_a_body_closes_the_connection(self, live_server):
        """Unread body bytes must never be parsed as the next request."""
        import http.client

        conn = http.client.HTTPConnection(
            live_server.host, live_server.port, timeout=30
        )
        try:
            conn.request(
                "GET", "/healthz", body=b'{"stray": "body"}'
            )
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            conn.close()


class TestTieredDaemon:
    """The mem-over-file daemon: warm artifacts byte-identical to the
    flat-store answer, hot digests served with zero file reads after first
    promotion (the acceptance criterion, asserted via per-tier stats)."""

    def test_hot_digest_never_touches_the_file_tier(self, tmp_path):
        import http.client
        import threading

        from repro.scenarios.store import ResultStore
        from repro.serving import create_server

        # The durable tier is warmed by a plain CLI run.
        cache_dir = tmp_path / "cache"
        assert main(["run", CHEAP_TABLE, "--cache-dir", str(cache_dir)]) == 0
        flat = ResultStore(cache_dir).get(get(CHEAP_TABLE))
        assert flat is not None

        store = ResultStore(f"mem://,file://{cache_dir}")
        mem_tier, file_tier = store.backend.tiers
        server = create_server(port=0, store=store)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=30)

            def post_run():
                conn.request(
                    "POST", "/run", json.dumps({"scenario": CHEAP_TABLE})
                )
                response = conn.getresponse()
                return response.status, json.loads(response.read())

            # First request: file-tier hit, promoted into mem.
            status, body = post_run()
            assert status == 200 and body["from_cache"] is True
            assert body["artifacts"]["text"] == flat.text
            assert file_tier.counters.hits == 1
            assert mem_tier.contains(body["digest"])

            # Hot requests: zero file reads, byte-identical artifacts.
            file_reads = file_tier.counters.reads
            for _ in range(5):
                status, hot = post_run()
                assert status == 200 and hot["from_cache"] is True
                assert hot["artifacts"] == body["artifacts"]
            assert file_tier.counters.reads == file_reads
            assert mem_tier.counters.hits >= 5

            # /stats exposes the per-tier breakdown that pinned this.
            conn.request("GET", "/stats")
            stats = json.loads(conn.getresponse().read())
            tiers = stats["store"]["backend"]["tiers"]
            assert [t["kind"] for t in tiers] == ["mem", "file"]
            assert tiers[0]["counters"]["hits"] >= 5
            assert tiers[1]["counters"]["reads"] == file_reads
            assert stats["store"]["backend"]["counters"]["promotions"] == 1
            conn.close()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_stats_report_median_created_age(self, live_server):
        live_server.post_json("/run?wait=1", {"scenario": CHEAP_TABLE})
        live_server.post_json("/run?wait=1", {"scenario": "table1"})
        block = live_server.request("GET", "/stats").json()["store"][
            "provenance"
        ]
        assert block["median_created_unix"] is not None
        assert (
            block["oldest_created_unix"]
            <= block["median_created_unix"]
            <= block["newest_created_unix"]
        )
