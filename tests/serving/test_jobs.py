"""Unit tests for the async job engine (:mod:`repro.serving.jobs`).

The manager is exercised with injected compute callables (gated by
events, or failing on demand) so every lifecycle edge — coalescing,
queue bounds, failure classification, terminal retention — is pinned
deterministically, without real scenario computes or sockets.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigError
from repro.scenarios import get
from repro.scenarios.store import ResultStore, stored_from_payload
from repro.serving.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobManager,
    QueueFullError,
)

SCENARIO = get("table1")


def fake_result(scenario, digest="0" * 64):
    return stored_from_payload(
        scenario, {"raw": {}, "text": "fake", "csv": None}, digest
    )


class GatedCompute:
    """A compute that blocks until released, counting its calls."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, scenario):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self.release.wait(10), "gated compute never released"
        return fake_result(scenario)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def make_manager(store, compute, **kwargs):
    return JobManager(store, compute=compute, **kwargs)


class TestLifecycle:
    def test_submit_runs_to_done(self, store):
        manager = make_manager(store, fake_result)
        try:
            snapshot = manager.submit(SCENARIO, "a" * 64)
            assert snapshot["status"] in (QUEUED, RUNNING)
            assert snapshot["coalesced_onto_existing"] is False
            assert manager.wait("a" * 64, timeout=10)
            done = manager.describe("a" * 64)
            assert done["status"] == DONE
            assert done["result_url"] == "/results/" + "a" * 64
            assert done["wall_time_s"] is not None
            assert done["queue_wait_s"] is not None
            assert done["error"] is None
            assert manager.counters.done == 1
        finally:
            manager.shutdown()

    def test_snapshot_reports_queue_position(self, store):
        compute = GatedCompute()
        manager = make_manager(store, compute, n_workers=1, max_queue=8)
        try:
            manager.submit(SCENARIO, "a" * 64)
            assert compute.started.wait(10)  # worker busy on job A
            b = manager.submit(SCENARIO, "b" * 64)
            c = manager.submit(SCENARIO, "c" * 64)
            assert b["queue_position"] == 1
            assert c["queue_position"] == 2
            running = manager.describe("a" * 64)
            assert running["status"] == RUNNING
            assert running["queue_position"] is None
            assert running["running_s"] >= 0
        finally:
            compute.release.set()
            manager.shutdown()

    def test_wait_on_unknown_digest_is_false(self, store):
        manager = make_manager(store, fake_result)
        assert manager.wait("f" * 64, timeout=0.01) is False

    def test_describe_unknown_digest_is_none(self, store):
        manager = make_manager(store, fake_result)
        assert manager.describe("f" * 64) is None


class TestCoalescing:
    def test_duplicate_submissions_share_one_compute(self, store):
        compute = GatedCompute()
        manager = make_manager(store, compute, n_workers=2)
        try:
            first = manager.submit(SCENARIO, "a" * 64)
            assert first["coalesced_onto_existing"] is False
            assert compute.started.wait(10)
            for _ in range(5):
                again = manager.submit(SCENARIO, "a" * 64)
                assert again["coalesced_onto_existing"] is True
            compute.release.set()
            assert manager.wait("a" * 64, timeout=10)
            assert compute.calls == 1
            assert manager.counters.submitted == 1
            assert manager.counters.coalesced == 5
            assert manager.describe("a" * 64)["coalesced"] == 5
        finally:
            compute.release.set()
            manager.shutdown()

    def test_resubmission_after_failure_starts_fresh(self, store):
        attempts = []

        def flaky(scenario):
            attempts.append(1)
            if len(attempts) == 1:
                raise ConfigError("first attempt fails")
            return fake_result(scenario)

        manager = make_manager(store, flaky)
        try:
            manager.submit(SCENARIO, "a" * 64)
            assert manager.wait("a" * 64, timeout=10)
            assert manager.describe("a" * 64)["status"] == FAILED
            # Failures are not cached: a new submission gets a new job.
            retry = manager.submit(SCENARIO, "a" * 64)
            assert retry["coalesced_onto_existing"] is False
            assert manager.wait("a" * 64, timeout=10)
            assert manager.describe("a" * 64)["status"] == DONE
            assert len(attempts) == 2
        finally:
            manager.shutdown()


class TestQueueBounds:
    def test_full_queue_rejects_with_retry_after(self, store):
        compute = GatedCompute()
        manager = make_manager(store, compute, n_workers=1, max_queue=2)
        try:
            manager.submit(SCENARIO, "a" * 64)  # running
            assert compute.started.wait(10)
            manager.submit(SCENARIO, "b" * 64)  # queued 1/2
            manager.submit(SCENARIO, "c" * 64)  # queued 2/2
            with pytest.raises(QueueFullError) as err:
                manager.submit(SCENARIO, "d" * 64)
            assert err.value.retry_after_s >= 1
            assert err.value.max_queue == 2
            assert manager.counters.rejected == 1
            # Coalescing onto an in-flight job still works at capacity.
            assert (
                manager.submit(SCENARIO, "b" * 64)[
                    "coalesced_onto_existing"
                ]
                is True
            )
        finally:
            compute.release.set()
            manager.shutdown()

    def test_submit_many_is_all_or_nothing(self, store):
        compute = GatedCompute()
        manager = make_manager(store, compute, n_workers=1, max_queue=2)
        try:
            manager.submit(SCENARIO, "a" * 64)
            assert compute.started.wait(10)
            # Three new digests cannot fit a queue of two: nothing lands.
            with pytest.raises(QueueFullError):
                manager.submit_many(
                    [
                        (SCENARIO, "b" * 64, "registry"),
                        (SCENARIO, "c" * 64, "registry"),
                        (SCENARIO, "d" * 64, "registry"),
                    ]
                )
            assert manager.describe("b" * 64) is None
            assert manager.stats()["queued"] == 0
            # Two fit exactly; in-batch duplicates coalesce, not occupy.
            snapshots = manager.submit_many(
                [
                    (SCENARIO, "b" * 64, "registry"),
                    (SCENARIO, "c" * 64, "registry"),
                    (SCENARIO, "b" * 64, "registry"),
                ]
            )
            assert set(snapshots) == {"b" * 64, "c" * 64}
            assert manager.counters.coalesced == 1
        finally:
            compute.release.set()
            manager.shutdown()


class TestFailureClassification:
    def test_registry_config_error_is_compute_failed(self, store):
        def boom(scenario):
            raise ConfigError("recipe bug in the registry spec")

        manager = make_manager(store, boom)
        try:
            manager.submit(SCENARIO, "a" * 64, origin="registry")
            assert manager.wait("a" * 64, timeout=10)
            snapshot = manager.describe("a" * 64)
            assert snapshot["status"] == FAILED
            assert snapshot["error"]["error"] == "compute-failed"
            assert "recipe bug" in snapshot["error"]["detail"]
        finally:
            manager.shutdown()

    def test_inline_config_error_is_invalid_scenario(self, store):
        def boom(scenario):
            raise ConfigError("bad client spec")

        manager = make_manager(store, boom)
        try:
            manager.submit(SCENARIO, "a" * 64, origin="inline")
            assert manager.wait("a" * 64, timeout=10)
            assert (
                manager.describe("a" * 64)["error"]["error"]
                == "invalid-scenario"
            )
        finally:
            manager.shutdown()

    def test_unexpected_exception_never_leaks_details(self, store):
        def boom(scenario):
            raise RuntimeError("secret internal state")

        manager = make_manager(store, boom)
        try:
            manager.submit(SCENARIO, "a" * 64)
            assert manager.wait("a" * 64, timeout=10)
            error = manager.describe("a" * 64)["error"]
            assert error == {
                "error": "internal",
                "detail": "unexpected RuntimeError",
            }
            assert manager.counters.failed == 1
        finally:
            manager.shutdown()


class TestRetentionAndStats:
    def test_terminal_jobs_are_retained_then_evicted_fifo(self, store):
        manager = make_manager(store, fake_result, retention=2)
        try:
            for prefix in "abcd":
                digest = prefix * 64
                manager.submit(SCENARIO, digest)
                assert manager.wait(digest, timeout=10)
            # Only the two most recent terminal jobs survive.
            assert manager.describe("a" * 64) is None
            assert manager.describe("b" * 64) is None
            assert manager.describe("c" * 64)["status"] == DONE
            assert manager.describe("d" * 64)["status"] == DONE
        finally:
            manager.shutdown()

    def test_stats_block_shape(self, store):
        manager = make_manager(store, fake_result, n_workers=3, max_queue=7)
        try:
            manager.submit(SCENARIO, "a" * 64)
            assert manager.wait("a" * 64, timeout=10)
            stats = manager.stats()
            assert stats["workers"] == 3
            assert stats["max_queue"] == 7
            assert stats["submitted"] == 1
            assert stats["done"] == 1
            assert stats["failed"] == 0
            assert stats["queued"] == 0
            assert stats["retained_done"] == 1
            assert stats["retry_after_s"] >= 1
        finally:
            manager.shutdown()

    def test_list_jobs_orders_live_before_terminal(self, store):
        compute = GatedCompute()
        manager = make_manager(store, compute, n_workers=1)
        try:
            manager.submit(SCENARIO, "a" * 64)
            assert compute.started.wait(10)
            manager.submit(SCENARIO, "b" * 64)
            listed = manager.list_jobs()
            statuses = {job["digest"]: job["status"] for job in listed}
            assert statuses["a" * 64] == RUNNING
            assert statuses["b" * 64] == QUEUED
        finally:
            compute.release.set()
            manager.shutdown()

    def test_shutdown_is_idempotent_and_joins_workers(self, store):
        manager = make_manager(store, fake_result)
        manager.submit(SCENARIO, "a" * 64)
        assert manager.wait("a" * 64, timeout=10)
        manager.shutdown()
        manager.shutdown()
        assert all(not t.is_alive() for t in manager._threads)

    def test_knob_validation(self, store):
        with pytest.raises(ConfigError):
            JobManager(store, n_workers=0)
        with pytest.raises(ConfigError):
            JobManager(store, max_queue=0)
        with pytest.raises(ConfigError):
            JobManager(store, retention=-1)
