"""Cross-layer integration tests: the paper's headline results end to end.

These tie the whole stack together — technology models sizing the
architecture, the EDA flow validating the MAC cost, the mapper + Optimus
reproducing the evaluation-section behaviours — without re-running the full
figure sweeps (those live in ``benchmarks/``).
"""

from __future__ import annotations

import pytest

from repro.core.model import Optimus
from repro.parallel.mapper import map_inference, map_training
from repro.parallel.strategy import ParallelConfig
from repro.units import TBPS
from repro.workloads.llm import GPT3_76B, LLAMA_405B

PAPER = ParallelConfig(tensor_parallel=8, pipeline_parallel=8, data_parallel=1)


class TestCrossLayerSizing:
    def test_mac_flow_sizes_compute_die(self):
        """Logic layer → architecture layer: the synthesized MAC cost is
        consistent with the die's 2.45 PFLOP/s at the JJ budget."""
        from repro.arch.compute import ComputeDie, mac_jj_from_flow

        die = ComputeDie(mac_jj=mac_jj_from_flow())
        assert 2.2e15 <= die.peak_flops <= 2.6e15

    def test_blade_l1_from_jsram_dies(self, blade):
        from repro.memory.jsram import JSRAMDie

        per_die = JSRAMDie().capacity_bytes
        assert blade.l1_capacity_bytes == pytest.approx(4 * per_die)

    def test_datalink_limits_memory_bandwidth(self, blade):
        assert blade.main_memory_bandwidth <= blade.datalink.bidirectional_bandwidth
        assert blade.main_memory_bandwidth <= blade.dram.internal_bandwidth


class TestHeadlineResults:
    def test_training_speedup_band(self, scd_system_16tbps, gpu_system):
        """Fig. 6 headline: SCD 3.5-4.4x faster for GPT-3 training."""
        spu = Optimus(scd_system_16tbps).evaluate_training(
            map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        )
        gpu = Optimus(gpu_system).evaluate_training(
            map_training(GPT3_76B, gpu_system, PAPER, 64)
        )
        assert 3.0 <= gpu.time_per_batch / spu.time_per_batch <= 4.8

    def test_inference_speedup_band(self, scd_system_16tbps, gpu_system):
        """Fig. 8 headline: ~9-11x inference speed-up at B=8."""
        spu = Optimus(scd_system_16tbps).evaluate_inference(
            map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        )
        gpu = Optimus(gpu_system).evaluate_inference(
            map_inference(LLAMA_405B, gpu_system, batch=8)
        )
        assert 8.0 <= gpu.latency / spu.latency <= 12.0

    def test_inference_gains_exceed_training_gains(
        self, scd_system_16tbps, gpu_system
    ):
        """Key takeaway: 'SCD offers even more performant execution of LLM
        inference compared to training' (memory-boundedness)."""
        spu_t = Optimus(scd_system_16tbps).evaluate_training(
            map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        )
        gpu_t = Optimus(gpu_system).evaluate_training(
            map_training(GPT3_76B, gpu_system, PAPER, 64)
        )
        spu_i = Optimus(scd_system_16tbps).evaluate_inference(
            map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        )
        gpu_i = Optimus(gpu_system).evaluate_inference(
            map_inference(LLAMA_405B, gpu_system, batch=8)
        )
        assert gpu_i.latency / spu_i.latency > gpu_t.time_per_batch / spu_t.time_per_batch

    def test_spu_gains_come_from_data_movement(self, scd_system_16tbps, gpu_system):
        """'The primary gain coming from faster data movement.'"""
        spu = Optimus(scd_system_16tbps).evaluate_training(
            map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        )
        gpu = Optimus(gpu_system).evaluate_training(
            map_training(GPT3_76B, gpu_system, PAPER, 64)
        )
        compute_gain = gpu.compute_time / spu.compute_time
        comm_gain = gpu.comm_time / spu.comm_time
        assert comm_gain > compute_gain

    def test_bandwidth_scaling_monotone_and_saturating(self, scd_system):
        """Fig. 5/7 shape: monotone, saturating returns."""
        latencies = []
        for bw in (1, 4, 16, 64):
            system = scd_system.with_dram_bandwidth(bw * TBPS)
            report = Optimus(system).evaluate_inference(
                map_inference(LLAMA_405B, system, batch=8, output_tokens=40)
            )
            latencies.append(report.latency)
        assert latencies == sorted(latencies, reverse=True)
        first_gain = latencies[0] / latencies[1]
        last_gain = latencies[2] / latencies[3]
        assert first_gain > last_gain


class TestCapacityStory:
    def test_gpu_kv_ceiling(self, gpu_system):
        """Fig. 8b: B=128 presses the 64-GPU capacity; B=256 exceeds it."""
        at_128 = map_inference(LLAMA_405B, gpu_system, batch=128)
        at_256 = map_inference(LLAMA_405B, gpu_system, batch=256)
        assert at_128.memory_required / gpu_system.total_memory_capacity > 0.9
        assert not at_256.fits_memory

    def test_blade_holds_405b_weights(self, scd_system_16tbps):
        mapped = map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        assert mapped.weights_bytes < scd_system_16tbps.total_memory_capacity
