"""Op-program timing engine: segment/cache equivalence and cache behavior.

The engine's contract is strict: run-length-encoded segment timing with the
memoized kernel cache must reproduce the seed's flat per-op walk to float
precision, for training stages, decode steps and whole evaluations.
"""

from __future__ import annotations

import pytest

from repro.core.model import Optimus
from repro.core.roofline import time_compute_kernel
from repro.core.timing_cache import (
    KernelTimingCache,
    NullTimingCache,
    default_timing_cache,
)
from repro.parallel.mapper import map_inference, map_training
from repro.parallel.strategy import ParallelConfig
from repro.units import TBPS
from repro.workloads.llm import GPT3_76B, LLAMA_405B
from repro.workloads.operators import OpProgram, Segment, gemm

PAPER = ParallelConfig(tensor_parallel=8, pipeline_parallel=8, data_parallel=1)

#: Both paths do the same float arithmetic up to summation order, so they
#: agree far tighter than the acceptance tolerance.
REL = 1e-12


def timing_fields(t) -> dict[str, float]:
    return {
        "total": t.total,
        "compute_kernel_time": t.compute_kernel_time,
        "comm_exposed_time": t.comm_exposed_time,
        "memory_bound_time": t.memory_bound_time,
        "compute_bound_time": t.compute_bound_time,
        "gemm_memory_bound_time": t.gemm_memory_bound_time,
        "gemm_compute_bound_time": t.gemm_compute_bound_time,
        "flops": t.flops,
    }


class TestProgramEquivalence:
    def test_training_stage_programs_match_flat_walk(self, scd_system_16tbps):
        mapped = map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        optimus = Optimus(scd_system_16tbps, cache=KernelTimingCache())
        for program in mapped.stage_fwd_programs + mapped.stage_bwd_programs:
            seg = timing_fields(optimus.time_program(program))
            flat = timing_fields(optimus.time_ops(program.flatten()))
            for name, value in flat.items():
                assert seg[name] == pytest.approx(value, rel=REL), name

    def test_decode_step_program_matches_flat_walk(self, scd_system_16tbps):
        mapped = map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        optimus = Optimus(scd_system_16tbps, cache=KernelTimingCache())
        for context in (200, 300, 399):
            seg = timing_fields(
                optimus.time_program(mapped.decode_program_at(context))
            )
            flat = timing_fields(optimus.time_ops(mapped.decode_ops_at(context)))
            for name, value in flat.items():
                assert seg[name] == pytest.approx(value, rel=REL), name

    def test_training_report_matches_seed_path(self, scd_system_16tbps):
        """Program engine vs the seed's flat, uncached walk, end to end."""
        mapped = map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        engine = Optimus(scd_system_16tbps).evaluate_training(mapped)
        seed = Optimus(
            scd_system_16tbps, cache=NullTimingCache(), use_programs=False
        ).evaluate_training(mapped)
        assert engine.time_per_batch == pytest.approx(seed.time_per_batch, rel=REL)
        assert engine.compute_time == pytest.approx(seed.compute_time, rel=REL)
        assert engine.comm_time == pytest.approx(seed.comm_time, rel=REL)
        assert engine.fw_gemm_breakdown.total == pytest.approx(
            seed.fw_gemm_breakdown.total, rel=REL
        )
        assert engine.flops_per_batch == pytest.approx(
            seed.flops_per_batch, rel=REL
        )

    def test_inference_report_matches_seed_path(self, scd_system_16tbps):
        mapped = map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        engine = Optimus(scd_system_16tbps).evaluate_inference(mapped)
        seed = Optimus(
            scd_system_16tbps, cache=NullTimingCache(), use_programs=False
        ).evaluate_inference(mapped)
        assert engine.latency == pytest.approx(seed.latency, rel=REL)
        assert engine.prefill_time == pytest.approx(seed.prefill_time, rel=REL)
        assert engine.decode_time == pytest.approx(seed.decode_time, rel=REL)
        assert engine.comm_time == pytest.approx(seed.comm_time, rel=REL)
        assert engine.memory_bound_kernel_time == pytest.approx(
            seed.memory_bound_kernel_time, rel=REL
        )

    def test_flops_per_batch_matches_flat_walk(self, scd_system_16tbps):
        """Segment-derived FLOPs equal the seed's full replica walk."""
        from repro.workloads.transformer import total_compute_flops

        mapped = map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        per_microbatch = sum(
            total_compute_flops(list(stage))
            for stage in mapped.stage_fwd_ops + mapped.stage_bwd_ops
        )
        seed_flops = per_microbatch * mapped.n_microbatches * 8
        assert mapped.flops_per_batch == pytest.approx(seed_flops, rel=REL)

    def test_program_flatten_roundtrip(self, scd_system_16tbps):
        """Programs flatten to exactly the seed's replicated op lists."""
        mapped = map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        layers = mapped.parallel.layers_per_stage(GPT3_76B.n_layers)
        for program, n_layers in zip(mapped.stage_fwd_programs, layers):
            assert program.n_ops == len(program.flatten())
            layer_segment = next(s for s in program.segments if s.repeat > 1)
            assert layer_segment.repeat == n_layers


class TestOpProgram:
    def test_segment_counts_and_flops(self):
        k = gemm("k", 64, 64, 64)
        program = OpProgram((Segment((k,), repeat=3), Segment((k, k))))
        assert program.n_ops == 5
        assert program.n_unique_ops == 3
        assert program.compute_flops() == pytest.approx(5 * k.flops)
        assert program.flatten() == (k, k, k, k, k)

    def test_from_ops(self):
        k = gemm("k", 8, 8, 8)
        program = OpProgram.from_ops([k, k], repeat=2)
        assert program.n_ops == 4
        assert program.flatten() == (k, k, k, k)

    def test_segment_repeat_validated(self):
        k = gemm("k", 8, 8, 8)
        with pytest.raises(Exception):
            Segment((k,), repeat=0)


class TestKernelTimingCache:
    def test_hit_on_repeat_miss_on_new_kernel(self, scd_system_16tbps):
        cache = KernelTimingCache()
        accel = scd_system_16tbps.accelerator
        k1 = gemm("k1", 64, 64, 64)
        k2 = gemm("k2", 128, 64, 64)
        assert cache.time_compute(k1, accel).time > 0
        assert (cache.hits, cache.misses) == (0, 1)
        cache.time_compute(k1, accel)
        assert (cache.hits, cache.misses) == (1, 1)
        cache.time_compute(k2, accel)
        assert (cache.hits, cache.misses) == (1, 2)

    def test_new_accelerator_misses(self, scd_system_16tbps):
        """A changed accelerator configuration invalidates: fresh misses."""
        cache = KernelTimingCache()
        # Big enough that the working set is served from DRAM, so the swept
        # bandwidth actually changes the timing.
        k = gemm("k", 4096, 4096, 4096)
        accel_a = scd_system_16tbps.accelerator
        accel_b = scd_system_16tbps.with_dram_bandwidth(1 * TBPS).accelerator
        cache.time_compute(k, accel_a)
        cache.time_compute(k, accel_b)
        assert cache.misses == 2
        assert cache.hits == 0
        assert cache.n_configs == 2
        # And the cached values differ — no cross-config contamination.
        t_a = cache.time_compute(k, accel_a)
        t_b = cache.time_compute(k, accel_b)
        assert cache.hits == 2
        assert t_a.time != t_b.time

    def test_value_equal_accelerators_share_entries(self, scd_system):
        """Keying is by value: separately built identical systems hit."""
        cache = KernelTimingCache()
        k = gemm("k", 64, 64, 64)
        cache.time_compute(k, scd_system.with_dram_bandwidth(16 * TBPS).accelerator)
        cache.time_compute(k, scd_system.with_dram_bandwidth(16 * TBPS).accelerator)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.n_configs == 1

    def test_cached_timing_matches_direct(self, scd_system_16tbps):
        cache = KernelTimingCache()
        accel = scd_system_16tbps.accelerator
        k = gemm("k", 256, 256, 256)
        assert cache.time_compute(k, accel) == time_compute_kernel(k, accel)
        assert cache.time_compute(k, accel) == time_compute_kernel(k, accel)

    def test_lru_eviction_bounds_configs(self, scd_system):
        cache = KernelTimingCache(max_configs=2)
        k = gemm("k", 64, 64, 64)
        for bw in (1, 2, 3, 4):
            cache.time_compute(k, scd_system.with_dram_bandwidth(bw * TBPS).accelerator)
        assert cache.n_configs == 2

    def test_clear_resets(self, scd_system_16tbps):
        cache = KernelTimingCache()
        k = gemm("k", 64, 64, 64)
        cache.time_compute(k, scd_system_16tbps.accelerator)
        cache.clear()
        assert cache.n_configs == 0
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.hit_rate == 0.0

    def test_null_cache_never_hits(self, scd_system_16tbps):
        cache = NullTimingCache()
        k = gemm("k", 64, 64, 64)
        cache.time_compute(k, scd_system_16tbps.accelerator)
        cache.time_compute(k, scd_system_16tbps.accelerator)
        assert cache.hits == 0
        assert cache.misses == 2

    def test_default_cache_is_shared_and_used(self, scd_system_16tbps):
        shared = default_timing_cache()
        assert Optimus(scd_system_16tbps).cache is shared
        assert Optimus(scd_system_16tbps).cache is shared

    def test_evaluation_populates_cache_across_calls(self, scd_system_16tbps):
        """Decode sampling and repeated evaluations reuse kernel timings."""
        cache = KernelTimingCache()
        optimus = Optimus(scd_system_16tbps, cache=cache)
        mapped = map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        optimus.evaluate_inference(mapped)
        assert cache.hits > 0  # embedding/head kernels repeat across samples
        hits_before, misses_before = cache.hits, cache.misses
        optimus.evaluate_inference(mapped)
        assert cache.misses == misses_before  # second run fully cached
        assert cache.hits > hits_before
