"""Report-dataclass tests."""

from __future__ import annotations

import pytest

from repro.core.report import GEMMBreakdown, InferenceReport, TrainingReport


def make_training(**overrides) -> TrainingReport:
    defaults = dict(
        system_name="sys",
        model_name="m",
        time_per_batch=2.0,
        compute_time=1.0,
        comm_time=0.5,
        bubble_time=0.3,
        update_time=0.2,
        flops_per_batch=1e18,
        n_accelerators=64,
        fw_gemm_breakdown=GEMMBreakdown(0.25e-3, 0.75e-3),
        memory_bound_kernel_time=0.4,
        compute_bound_kernel_time=0.6,
    )
    defaults.update(overrides)
    return TrainingReport(**defaults)


class TestGEMMBreakdown:
    def test_total_and_fraction(self):
        breakdown = GEMMBreakdown(0.25, 0.75)
        assert breakdown.total == 1.0
        assert breakdown.memory_fraction == 0.25

    def test_zero_total(self):
        assert GEMMBreakdown(0.0, 0.0).memory_fraction == 0.0


class TestTrainingReport:
    def test_others_is_bubble_plus_update(self):
        report = make_training()
        assert report.others_time == pytest.approx(0.5)

    def test_breakdown_sums(self):
        report = make_training()
        assert sum(report.breakdown().values()) == pytest.approx(2.0)

    def test_achieved_flops(self):
        report = make_training()
        assert report.achieved_flops_per_pu == pytest.approx(1e18 / (2.0 * 64))

    def test_tokens_per_second(self):
        report = make_training(tokens_processed=131072.0)
        assert report.tokens_per_second == pytest.approx(65536.0)
        assert make_training().tokens_per_second == 0.0


class TestInferenceReport:
    def make(self) -> InferenceReport:
        return InferenceReport(
            system_name="sys",
            model_name="m",
            latency=1.0,
            prefill_time=0.2,
            decode_time=0.8,
            comm_time=0.1,
            flops_total=6.4e16,
            n_accelerators=64,
            batch=8,
            input_tokens=200,
            output_tokens=200,
            kv_cache_bytes=1e11,
            fits_memory=True,
            memory_bound_kernel_time=0.7,
            compute_bound_kernel_time=0.2,
        )

    def test_throughputs(self):
        report = self.make()
        assert report.tokens_per_second == pytest.approx(1600.0)
        assert report.time_per_output_token == pytest.approx(0.004)
        assert report.achieved_flops_per_pu == pytest.approx(1e15)
