"""Hierarchical-roofline tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.roofline import Boundedness, time_compute_kernel
from repro.units import TBPS
from repro.workloads.operators import gemm, softmax


class TestClassification:
    def test_fat_gemm_compute_bound(self, scd_system_16tbps):
        kernel = gemm("fat", 4096, 4096, 4096)
        timing = time_compute_kernel(kernel, scd_system_16tbps.accelerator)
        assert timing.bound is Boundedness.COMPUTE

    def test_thin_gemv_memory_bound(self, scd_system_16tbps):
        kernel = gemm("thin", 8, 4096, 4096).with_residency(1e9)
        timing = time_compute_kernel(kernel, scd_system_16tbps.accelerator)
        assert timing.bound is Boundedness.MEMORY
        assert timing.level_name == "DRAM"

    def test_softmax_memory_bound_everywhere(self, scd_system_16tbps, gpu_system):
        kernel = softmax("sm", 1e8)
        for system in (scd_system_16tbps, gpu_system):
            timing = time_compute_kernel(kernel, system.accelerator)
            assert timing.bound is Boundedness.MEMORY

    def test_small_working_set_served_from_l1(self, scd_system_16tbps):
        kernel = gemm("small", 64, 64, 64)
        timing = time_compute_kernel(kernel, scd_system_16tbps.accelerator)
        assert timing.level_name == "L1"

    def test_residency_forces_dram(self, scd_system_16tbps):
        free = gemm("k", 64, 64, 64)
        pinned = free.with_residency(1e12)
        accel = scd_system_16tbps.accelerator
        assert time_compute_kernel(free, accel).level_name == "L1"
        assert time_compute_kernel(pinned, accel).level_name == "DRAM"

    def test_attention_ai_crossover_band(self, scd_system):
        """The s=2048 attention GEMM (AI≈114) crosses from memory- to
        compute-bound in the 16-64 TBps band — the paper's Fig. 5 knee."""
        kernel = gemm(
            "score", 2048, 2048, 128, batch=10, weight_operand=False
        ).with_residency(1e9)
        low = scd_system.with_dram_bandwidth(4 * TBPS).accelerator
        high = scd_system.with_dram_bandwidth(64 * TBPS).accelerator
        assert time_compute_kernel(kernel, low).bound is Boundedness.MEMORY
        t_high = time_compute_kernel(kernel, high)
        # At 64 TBps nominal (≈11 TBps effective) it is near the crossover.
        assert t_high.memory_time < 2.5 * t_high.compute_time


class TestTimingLaws:
    @given(st.integers(min_value=1, max_value=2048))
    @settings(max_examples=20, deadline=None)
    def test_time_is_max_plus_overhead(self, m):
        from repro.arch.gpu import h100_accelerator

        accel = h100_accelerator()
        kernel = gemm("g", m, 512, 512)
        timing = time_compute_kernel(kernel, accel)
        assert timing.time == pytest.approx(
            max(timing.compute_time, timing.memory_time) + accel.kernel_overhead
        )

    @given(st.floats(min_value=1e12, max_value=64e12))
    @settings(max_examples=20, deadline=None)
    def test_memory_time_non_increasing_in_bandwidth(self, bandwidth):
        from repro.arch.blade import build_blade

        system = build_blade().system()
        kernel = gemm("k", 8, 4096, 4096).with_residency(1e12)
        slow = time_compute_kernel(
            kernel, system.with_dram_bandwidth(bandwidth).accelerator
        )
        fast = time_compute_kernel(
            kernel, system.with_dram_bandwidth(bandwidth * 2).accelerator
        )
        assert fast.memory_time <= slow.memory_time

    def test_zero_flop_kernel(self, scd_system_16tbps):
        from repro.workloads.operators import embedding_lookup

        kernel = embedding_lookup("emb", 100, 4096)
        timing = time_compute_kernel(kernel, scd_system_16tbps.accelerator)
        assert timing.compute_time == 0.0
        assert timing.bound is Boundedness.MEMORY

    def test_stream_efficiency_applied(self, gpu_system):
        """GPU thin kernels see derated HBM bandwidth (low-AI regime)."""
        accel = gpu_system.accelerator
        thin = gemm("thin", 8, 4096, 4096).with_residency(1e12)
        timing = time_compute_kernel(thin, accel)
        dram = accel.hierarchy["DRAM"]
        nominal_time = dram.latency + thin.bytes_total / dram.effective_bandwidth
        assert timing.memory_time > 1.5 * nominal_time
