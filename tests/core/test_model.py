"""Optimus end-to-end evaluator tests."""

from __future__ import annotations

import pytest

from repro.core.model import Optimus
from repro.parallel.mapper import map_inference, map_training
from repro.parallel.strategy import ParallelConfig
from repro.units import TBPS
from repro.workloads.llm import GPT3_76B, LLAMA_405B

PAPER = ParallelConfig(tensor_parallel=8, pipeline_parallel=8, data_parallel=1)


class TestTrainingEvaluation:
    def test_breakdown_sums_to_total(self, scd_system_16tbps):
        report = Optimus(scd_system_16tbps).evaluate_training(
            map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        )
        parts = report.breakdown()
        assert sum(parts.values()) == pytest.approx(report.time_per_batch, rel=1e-9)
        assert all(v >= 0 for v in parts.values())

    def test_achieved_below_sustained(self, scd_system_16tbps):
        report = Optimus(scd_system_16tbps).evaluate_training(
            map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        )
        accel = scd_system_16tbps.accelerator
        assert report.achieved_flops_per_pu < accel.sustained_flops

    def test_bigger_batch_more_tokens_per_second(self, scd_system_16tbps):
        optimus = Optimus(scd_system_16tbps)
        small = optimus.evaluate_training(
            map_training(GPT3_76B, scd_system_16tbps, PAPER, 16)
        )
        large = optimus.evaluate_training(
            map_training(GPT3_76B, scd_system_16tbps, PAPER, 128)
        )
        # More microbatches amortize the pipeline bubble.
        assert large.tokens_per_second > small.tokens_per_second

    def test_dp_variant_evaluates(self, scd_system_16tbps):
        report = Optimus(scd_system_16tbps).evaluate_training(
            map_training(GPT3_76B, scd_system_16tbps, ParallelConfig(8, 4, 2), 64)
        )
        assert report.time_per_batch > 0
        assert report.comm_time > 0

    def test_bandwidth_helps_training(self, scd_system):
        slow = scd_system.with_dram_bandwidth(0.5 * TBPS)
        fast = scd_system.with_dram_bandwidth(16 * TBPS)
        t_slow = Optimus(slow).evaluate_training(
            map_training(GPT3_76B, slow, PAPER, 32)
        ).time_per_batch
        t_fast = Optimus(fast).evaluate_training(
            map_training(GPT3_76B, fast, PAPER, 32)
        ).time_per_batch
        assert t_fast < t_slow

    def test_gemm_breakdown_populated(self, scd_system_16tbps):
        report = Optimus(scd_system_16tbps).evaluate_training(
            map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        )
        assert report.fw_gemm_breakdown.total > 0
        assert 0 <= report.fw_gemm_breakdown.memory_fraction <= 1


class TestInferenceEvaluation:
    def test_latency_decomposition(self, scd_system_16tbps):
        report = Optimus(scd_system_16tbps).evaluate_inference(
            map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        )
        assert report.latency == pytest.approx(
            report.prefill_time + report.decode_time
        )
        assert report.decode_time > report.prefill_time  # 200-step decode

    def test_decode_integration_accuracy(self, scd_system_16tbps):
        """Sampled trapezoid integration matches the exact per-step sum."""
        mapped = map_inference(
            LLAMA_405B, scd_system_16tbps, batch=8, input_tokens=50, output_tokens=24
        )
        sampled = Optimus(scd_system_16tbps, decode_samples=5).evaluate_inference(mapped)
        exact = Optimus(scd_system_16tbps, decode_samples=24).evaluate_inference(mapped)
        assert sampled.decode_time == pytest.approx(exact.decode_time, rel=0.01)

    def test_tokens_per_second(self, scd_system_16tbps):
        report = Optimus(scd_system_16tbps).evaluate_inference(
            map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        )
        assert report.tokens_per_second == pytest.approx(
            8 * 200 / report.latency
        )
        assert report.time_per_output_token == pytest.approx(
            report.decode_time / 200
        )

    def test_more_output_tokens_longer_latency(self, scd_system_16tbps):
        optimus = Optimus(scd_system_16tbps)
        short = optimus.evaluate_inference(
            map_inference(LLAMA_405B, scd_system_16tbps, batch=8, output_tokens=50)
        )
        long = optimus.evaluate_inference(
            map_inference(LLAMA_405B, scd_system_16tbps, batch=8, output_tokens=200)
        )
        assert long.latency > short.latency

    def test_inference_mostly_memory_bound(self, scd_system_16tbps):
        report = Optimus(scd_system_16tbps).evaluate_inference(
            map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        )
        # "Inference is known to be a memory-bound workload" (Sec. VI).
        assert report.memory_bound_kernel_time > report.compute_bound_kernel_time

    def test_single_decode_step(self, scd_system_16tbps):
        report = Optimus(scd_system_16tbps).evaluate_inference(
            map_inference(LLAMA_405B, scd_system_16tbps, batch=8, output_tokens=1)
        )
        assert report.output_tokens == 1
        assert report.decode_time > 0
