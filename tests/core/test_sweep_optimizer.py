"""Sweep-utility and strategy-optimizer tests."""

from __future__ import annotations

import pytest

from repro.core.optimizer import search_strategies
from repro.core.report import InferenceReport, TrainingReport
from repro.core.sweep import (
    sweep_batch_size,
    sweep_dram_bandwidth,
    sweep_dram_latency,
)
from repro.errors import MappingError
from repro.parallel.strategy import ParallelConfig
from repro.units import TBPS
from repro.workloads.llm import GPT3_76B, LLAMA_405B

PAPER = ParallelConfig(8, 8, 1)


class TestSweeps:
    def test_bandwidth_sweep_training(self, scd_system):
        points = sweep_dram_bandwidth(
            GPT3_76B, scd_system, [1 * TBPS, 8 * TBPS], "training", PAPER, 32
        )
        assert len(points) == 2
        assert all(isinstance(p.report, TrainingReport) for p in points)
        assert points[1].report.time_per_batch < points[0].report.time_per_batch

    def test_bandwidth_sweep_inference(self, scd_system):
        points = sweep_dram_bandwidth(
            LLAMA_405B, scd_system, [1 * TBPS, 8 * TBPS], "inference", None, 8,
            output_tokens=20,
        )
        assert all(isinstance(p.report, InferenceReport) for p in points)
        assert points[1].report.latency < points[0].report.latency

    def test_latency_sweep(self, scd_system_16tbps):
        points = sweep_dram_latency(
            LLAMA_405B, scd_system_16tbps, [10e-9, 200e-9], batch=8,
            output_tokens=20,
        )
        assert points[1].report.latency > points[0].report.latency

    def test_batch_sweep(self, scd_system_16tbps):
        points = sweep_batch_size(
            LLAMA_405B, scd_system_16tbps, [4, 16], output_tokens=20
        )
        assert points[1].report.latency > points[0].report.latency
        assert (
            points[1].report.achieved_flops_per_pu
            > points[0].report.achieved_flops_per_pu
        )

    def test_sweep_rejects_bad_bandwidth(self, scd_system):
        with pytest.raises(Exception):
            sweep_dram_bandwidth(GPT3_76B, scd_system, [0.0], "training", PAPER, 32)


class TestOptimizer:
    def test_results_sorted(self, scd_system_16tbps):
        results = search_strategies(GPT3_76B, scd_system_16tbps, 64, max_candidates=12)
        times = [r.time_per_batch for r in results]
        assert times == sorted(times)

    def test_require_fit_filters(self, gpu_system):
        from repro.workloads.llm import GPT3_175B

        all_results = search_strategies(GPT3_175B, gpu_system, 64, max_candidates=16)
        fitting = search_strategies(
            GPT3_175B, gpu_system, 64, max_candidates=16, require_fit=True
        )
        assert len(fitting) <= len(all_results)
        assert all(r.report.fits_memory for r in fitting)

    def test_no_strategy_raises(self, scd_system_16tbps):
        # 7 accelerators, 3 layers, batch 13: TP=7 fails the 80-head split,
        # PP=7 exceeds the depth, DP=7 fails the batch split.
        small = scd_system_16tbps.with_n(7)
        shallow = GPT3_76B.with_layers(3)
        with pytest.raises(MappingError):
            search_strategies(shallow, small, 13, max_candidates=8)
