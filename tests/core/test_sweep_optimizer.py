"""Strategy-optimizer tests plus the legacy sweep helpers' removal."""

from __future__ import annotations

import pytest

from repro.core.optimizer import search_strategies
from repro.errors import MappingError
from repro.parallel.strategy import ParallelConfig
from repro.workloads.llm import GPT3_76B

PAPER = ParallelConfig(8, 8, 1)


class TestLegacySweepsRemoved:
    """`repro.core.sweep` is a tombstone: nothing exported, clear pointers."""

    REMOVED = (
        "SweepPoint",
        "sweep_dram_bandwidth",
        "sweep_dram_latency",
        "sweep_batch_size",
    )

    def test_module_exports_nothing(self):
        import repro.core.sweep as legacy

        assert legacy.__all__ == []
        public = [
            name
            for name in vars(legacy)
            if not name.startswith("_") and name != "annotations"
        ]
        assert public == []

    @pytest.mark.parametrize("name", REMOVED)
    def test_removed_names_raise_with_migration_pointer(self, name):
        import repro.core.sweep as legacy

        with pytest.raises(AttributeError, match="repro.scenarios"):
            getattr(legacy, name)
        with pytest.raises(ImportError, match=name):
            exec(f"from repro.core.sweep import {name}")

    def test_unknown_attribute_still_plain_error(self):
        import repro.core.sweep as legacy

        with pytest.raises(AttributeError, match="no attribute"):
            legacy.nonsense

    def test_migration_target_still_covers_the_helpers(self, scd_system):
        """The scenario spelling of the old bandwidth sweep works."""
        from repro.arch.config import SystemConfig
        from repro.scenarios import Scenario

        result = (
            Scenario.builder("legacy-migration")
            .training(GPT3_76B, batch=32)
            .parallel(tensor_parallel=8, pipeline_parallel=8)
            .on(SystemConfig(kind="scd_blade"))
            .sweep_product(**{"system.dram_bandwidth_tbps": (1, 8)})
            .extracting("time_per_batch")
            .build()
            .run()
        )
        times = result.series("time_per_batch")
        assert times[1] < times[0]


class TestOptimizer:
    def test_results_sorted(self, scd_system_16tbps):
        results = search_strategies(GPT3_76B, scd_system_16tbps, 64, max_candidates=12)
        times = [r.time_per_batch for r in results]
        assert times == sorted(times)

    def test_require_fit_filters(self, gpu_system):
        from repro.workloads.llm import GPT3_175B

        all_results = search_strategies(GPT3_175B, gpu_system, 64, max_candidates=16)
        fitting = search_strategies(
            GPT3_175B, gpu_system, 64, max_candidates=16, require_fit=True
        )
        assert len(fitting) <= len(all_results)
        assert all(r.report.fits_memory for r in fitting)

    def test_no_strategy_raises(self, scd_system_16tbps):
        # 7 accelerators, 3 layers, batch 13: TP=7 fails the 80-head split,
        # PP=7 exceeds the depth, DP=7 fails the batch split.
        small = scd_system_16tbps.with_n(7)
        shallow = GPT3_76B.with_layers(3)
        with pytest.raises(MappingError):
            search_strategies(shallow, small, 13, max_candidates=8)

    def test_workers_fanout_matches_serial(self, scd_system_16tbps):
        serial = search_strategies(
            GPT3_76B, scd_system_16tbps, 64, max_candidates=8
        )
        fanned = search_strategies(
            GPT3_76B, scd_system_16tbps, 64, max_candidates=8, workers=2
        )
        assert [r.parallel for r in serial] == [r.parallel for r in fanned]
        assert [r.time_per_batch for r in serial] == pytest.approx(
            [r.time_per_batch for r in fanned], rel=1e-12
        )
