"""Strategy-optimizer tests plus the legacy sweep helpers' deprecation."""

from __future__ import annotations

import pytest

from repro.core.optimizer import search_strategies
from repro.core.report import InferenceReport, TrainingReport
from repro.core.sweep import (
    sweep_batch_size,
    sweep_dram_bandwidth,
    sweep_dram_latency,
)
from repro.errors import MappingError
from repro.parallel.strategy import ParallelConfig
from repro.units import TBPS
from repro.workloads.llm import GPT3_76B, LLAMA_405B

PAPER = ParallelConfig(8, 8, 1)


class TestLegacySweepsDeprecated:
    """The single-axis helpers still work but point at the scenario API."""

    def test_bandwidth_sweep_training_warns_and_works(self, scd_system):
        with pytest.deprecated_call(match="repro.scenarios"):
            points = sweep_dram_bandwidth(
                GPT3_76B, scd_system, [1 * TBPS, 8 * TBPS], "training", PAPER, 32
            )
        assert len(points) == 2
        assert all(isinstance(p.report, TrainingReport) for p in points)
        assert points[1].report.time_per_batch < points[0].report.time_per_batch

    def test_bandwidth_sweep_inference_warns(self, scd_system):
        with pytest.deprecated_call():
            points = sweep_dram_bandwidth(
                LLAMA_405B, scd_system, [1 * TBPS, 8 * TBPS], "inference",
                None, 8, output_tokens=20,
            )
        assert all(isinstance(p.report, InferenceReport) for p in points)
        assert points[1].report.latency < points[0].report.latency

    def test_latency_sweep_warns(self, scd_system_16tbps):
        with pytest.deprecated_call():
            points = sweep_dram_latency(
                LLAMA_405B, scd_system_16tbps, [10e-9, 200e-9], batch=8,
                output_tokens=20,
            )
        assert points[1].report.latency > points[0].report.latency

    def test_batch_sweep_warns(self, scd_system_16tbps):
        with pytest.deprecated_call():
            points = sweep_batch_size(
                LLAMA_405B, scd_system_16tbps, [4, 16], output_tokens=20
            )
        assert points[1].report.latency > points[0].report.latency

    def test_scenario_equivalent_matches_legacy(self, scd_system):
        """The migration target reproduces the legacy helper's numbers."""
        from repro.arch.config import SystemConfig
        from repro.scenarios import Scenario

        with pytest.deprecated_call():
            legacy = sweep_dram_bandwidth(
                GPT3_76B, scd_system, [1 * TBPS, 8 * TBPS], "training", PAPER, 32
            )
        result = (
            Scenario.builder("legacy-migration")
            .training(GPT3_76B, batch=32)
            .parallel(tensor_parallel=8, pipeline_parallel=8)
            .on(SystemConfig(kind="scd_blade"))
            .sweep_product(**{"system.dram_bandwidth_tbps": (1, 8)})
            .extracting("time_per_batch")
            .build()
            .run()
        )
        assert result.series("time_per_batch") == pytest.approx(
            tuple(p.report.time_per_batch for p in legacy), rel=1e-12
        )


class TestOptimizer:
    def test_results_sorted(self, scd_system_16tbps):
        results = search_strategies(GPT3_76B, scd_system_16tbps, 64, max_candidates=12)
        times = [r.time_per_batch for r in results]
        assert times == sorted(times)

    def test_require_fit_filters(self, gpu_system):
        from repro.workloads.llm import GPT3_175B

        all_results = search_strategies(GPT3_175B, gpu_system, 64, max_candidates=16)
        fitting = search_strategies(
            GPT3_175B, gpu_system, 64, max_candidates=16, require_fit=True
        )
        assert len(fitting) <= len(all_results)
        assert all(r.report.fits_memory for r in fitting)

    def test_no_strategy_raises(self, scd_system_16tbps):
        # 7 accelerators, 3 layers, batch 13: TP=7 fails the 80-head split,
        # PP=7 exceeds the depth, DP=7 fails the batch split.
        small = scd_system_16tbps.with_n(7)
        shallow = GPT3_76B.with_layers(3)
        with pytest.raises(MappingError):
            search_strategies(shallow, small, 13, max_candidates=8)

    def test_workers_fanout_matches_serial(self, scd_system_16tbps):
        serial = search_strategies(
            GPT3_76B, scd_system_16tbps, 64, max_candidates=8
        )
        fanned = search_strategies(
            GPT3_76B, scd_system_16tbps, 64, max_candidates=8, workers=2
        )
        assert [r.parallel for r in serial] == [r.parallel for r in fanned]
        assert [r.time_per_batch for r in serial] == pytest.approx(
            [r.time_per_batch for r in fanned], rel=1e-12
        )
