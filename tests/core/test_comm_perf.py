"""Communication-timing dispatch tests."""

from __future__ import annotations

import pytest

from repro.core.comm_perf import time_comm_kernel
from repro.interconnect.collectives import (
    CollectiveAlgorithm,
    Fabric,
    HierarchicalFabric,
    all_reduce_time,
)
from repro.workloads.operators import (
    CommKernel,
    CommPattern,
    all_reduce,
    all_to_all,
    point_to_point,
)

FLAT = Fabric(name="flat", alpha=1e-6, bandwidth=100e9)
HIER = HierarchicalFabric(
    intra=Fabric(
        name="fast", alpha=1e-7, bandwidth=400e9,
        algorithm=CollectiveAlgorithm.SWITCH_REDUCTION,
    ),
    inter=Fabric(name="slow", alpha=2e-6, bandwidth=50e9),
    group_size=8,
)


class TestDispatch:
    @pytest.mark.parametrize(
        "pattern",
        [
            CommPattern.ALL_REDUCE,
            CommPattern.ALL_GATHER,
            CommPattern.REDUCE_SCATTER,
            CommPattern.ALL_TO_ALL,
            CommPattern.POINT_TO_POINT,
        ],
    )
    def test_every_pattern_times_on_both_fabrics(self, pattern):
        kernel = CommKernel(name="k", pattern=pattern, n_bytes=1e6, participants=16)
        assert time_comm_kernel(kernel, FLAT).time > 0
        assert time_comm_kernel(kernel, HIER).time > 0

    def test_flat_allreduce_matches_collective_model(self):
        kernel = all_reduce("ar", 1e6, 16)
        timing = time_comm_kernel(kernel, FLAT)
        assert timing.time == pytest.approx(all_reduce_time(FLAT, 1e6, 16))

    def test_overlap_reduces_exposed_time(self):
        full = all_reduce("ar", 1e6, 16)
        hidden = all_reduce("ar", 1e6, 16, overlap_fraction=0.75)
        t_full = time_comm_kernel(full, FLAT)
        t_hidden = time_comm_kernel(hidden, FLAT)
        assert t_full.time == pytest.approx(t_hidden.time)
        assert t_hidden.exposed_time == pytest.approx(0.25 * t_hidden.time)

    def test_spans_groups_routes_to_inter(self):
        local = all_reduce("dp", 1e6, 2)
        spanning = all_reduce("dp", 1e6, 2, spans_groups=True)
        assert (
            time_comm_kernel(spanning, HIER).time
            > time_comm_kernel(local, HIER).time
        )

    def test_spans_groups_ignored_on_flat_fabric(self):
        local = all_reduce("dp", 1e6, 2)
        spanning = all_reduce("dp", 1e6, 2, spans_groups=True)
        assert time_comm_kernel(spanning, FLAT).time == pytest.approx(
            time_comm_kernel(local, FLAT).time
        )

    def test_p2p_cross_group_detection(self):
        small = point_to_point("p", 1e6)  # participants=2 <= group_size
        timing = time_comm_kernel(small, HIER)
        assert timing.time == pytest.approx(
            HIER.point_to_point_time(1e6, cross_group=False)
        )

    def test_all_to_all_hierarchical(self):
        kernel = all_to_all("a2a", 1e6, 64)
        assert time_comm_kernel(kernel, HIER).time > 0
