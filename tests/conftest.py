"""Shared fixtures: expensive system objects built once per session,
plus the live-daemon factory the serving/federation suites share."""

from __future__ import annotations

import itertools
from contextlib import ExitStack

import pytest

from repro.arch.blade import build_blade
from repro.arch.gpu import build_gpu_system
from repro.serving.testing import launch_daemon
from repro.units import TBPS


@pytest.fixture
def live_daemon(tmp_path):
    """Factory for live in-process daemons.

    Each call launches one daemon on an ephemeral port (its own temp
    cache dir unless ``cache=``/``store=`` is given) and registers a
    guaranteed ``shutdown()`` + ``server_close()`` teardown.  Shared by
    the backend-conformance, federation, wire-fuzz and gzip suites so
    none of them hand-rolls servers.
    """
    stack = ExitStack()
    counter = itertools.count()

    def launch(**server_kwargs):
        if "cache" not in server_kwargs and "store" not in server_kwargs:
            server_kwargs["cache"] = (
                f"file://{tmp_path}/daemon-{next(counter)}"
            )
        return stack.enter_context(launch_daemon(**server_kwargs))

    try:
        yield launch
    finally:
        stack.close()


@pytest.fixture(scope="session")
def blade():
    """The baseline Fig. 3c blade."""
    return build_blade()


@pytest.fixture(scope="session")
def scd_system(blade):
    """The blade as a 64-SPU system at the baseline 0.47 TBps/SPU."""
    return blade.system()


@pytest.fixture(scope="session")
def scd_system_16tbps(scd_system):
    """The blade at the paper's 16 TBps effective bandwidth per SPU."""
    return scd_system.with_dram_bandwidth(16 * TBPS)


@pytest.fixture(scope="session")
def gpu_system():
    """64 H100s (8 per NVSwitch node, InfiniBand between nodes)."""
    return build_gpu_system(64)
