"""Shared fixtures: expensive system objects built once per session."""

from __future__ import annotations

import pytest

from repro.arch.blade import build_blade
from repro.arch.gpu import build_gpu_system
from repro.units import TBPS


@pytest.fixture(scope="session")
def blade():
    """The baseline Fig. 3c blade."""
    return build_blade()


@pytest.fixture(scope="session")
def scd_system(blade):
    """The blade as a 64-SPU system at the baseline 0.47 TBps/SPU."""
    return blade.system()


@pytest.fixture(scope="session")
def scd_system_16tbps(scd_system):
    """The blade at the paper's 16 TBps effective bandwidth per SPU."""
    return scd_system.with_dram_bandwidth(16 * TBPS)


@pytest.fixture(scope="session")
def gpu_system():
    """64 H100s (8 per NVSwitch node, InfiniBand between nodes)."""
    return build_gpu_system(64)
