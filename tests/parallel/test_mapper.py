"""Distributed-mapper tests: training and inference mappings."""

from __future__ import annotations

import pytest

from repro.errors import MappingError
from repro.parallel.mapper import (
    OPTIMIZER_BYTES_PER_PARAM,
    map_inference,
    map_training,
)
from repro.parallel.strategy import ParallelConfig
from repro.workloads.llm import GPT3_175B, GPT3_76B, LLAMA_405B
from repro.workloads.operators import CommKernel, ComputeKernel, KernelKind

PAPER = ParallelConfig(tensor_parallel=8, pipeline_parallel=8, data_parallel=1)


class TestTrainingMapping:
    def test_stage_counts(self, scd_system_16tbps):
        mapped = map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        assert len(mapped.stage_fwd_ops) == 8
        assert len(mapped.stage_bwd_ops) == 8
        assert mapped.n_microbatches == 64

    def test_layer_distribution_60_over_8(self, scd_system_16tbps):
        mapped = map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        # 60 layers over 8 stages: interior stages hold 7 or 8 layers; the
        # per-stage op counts must reflect that.
        counts = [len(ops) for ops in mapped.stage_fwd_ops]
        assert counts[0] > counts[-2] or counts[0] > counts[1] - 5

    def test_first_stage_has_embedding_last_has_head(self, scd_system_16tbps):
        mapped = map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        first_names = [op.name for op in mapped.stage_fwd_ops[0]]
        last_names = [op.name for op in mapped.stage_fwd_ops[-1]]
        assert "tok_embedding" in first_names
        assert "lm_head" in last_names
        assert "lm_head" not in first_names

    def test_flops_match_6pbs_rule(self, scd_system_16tbps):
        """Total fwd+bwd FLOPs ≈ 6·P·tokens plus the attention term."""
        batch = 64
        mapped = map_training(GPT3_76B, scd_system_16tbps, PAPER, batch)
        tokens = batch * GPT3_76B.max_seq_len
        dense = 6.0 * GPT3_76B.n_params * tokens
        attention = 3 * 4 * GPT3_76B.n_layers * tokens * GPT3_76B.max_seq_len * GPT3_76B.hidden
        assert mapped.flops_per_batch == pytest.approx(dense + attention, rel=0.05)

    def test_weight_kernels_carry_residency(self, scd_system_16tbps):
        mapped = map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        shard = GPT3_76B.n_params / 64 * 2.0
        for op in mapped.stage_fwd_ops[1]:
            if isinstance(op, ComputeKernel) and op.weight_bytes > 0:
                assert op.resident_set_bytes == pytest.approx(shard)

    def test_dp_allreduce_only_with_dp(self, scd_system_16tbps):
        no_dp = map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        assert no_dp.dp_allreduce is None
        with_dp = map_training(
            GPT3_76B,
            scd_system_16tbps,
            ParallelConfig(8, 4, 2),
            64,
        )
        assert with_dp.dp_allreduce is not None
        assert with_dp.dp_allreduce.participants == 2

    def test_memory_accounting(self, scd_system_16tbps, gpu_system):
        mapped = map_training(GPT3_175B, gpu_system, PAPER, 64)
        expected = GPT3_175B.n_params / 64 * OPTIMIZER_BYTES_PER_PARAM
        assert mapped.memory_per_device == pytest.approx(expected)
        assert mapped.fits_memory  # 49 GB < 80 GB HBM
        # The blade's 32 GB/SPU share cannot hold full Adam state for 175B.
        scd_mapped = map_training(GPT3_175B, scd_system_16tbps, PAPER, 64)
        assert not scd_mapped.fits_memory

    def test_p2p_bytes(self, scd_system_16tbps):
        mapped = map_training(GPT3_76B, scd_system_16tbps, PAPER, 64)
        assert mapped.p2p_bytes == pytest.approx(2048 * GPT3_76B.hidden * 2.0)

    def test_invalid_strategy_rejected(self, scd_system_16tbps):
        with pytest.raises(MappingError):
            map_training(GPT3_76B, scd_system_16tbps, ParallelConfig(8, 4, 1), 64)


class TestInferenceMapping:
    def test_defaults_to_full_tp(self, scd_system_16tbps):
        mapped = map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        assert mapped.parallel.tensor_parallel == 64

    def test_prefill_and_decode_ops(self, scd_system_16tbps):
        mapped = map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        assert len(mapped.prefill_ops) > LLAMA_405B.n_layers
        step = mapped.decode_ops_at(300)
        assert len(step) > LLAMA_405B.n_layers

    def test_decode_contexts(self, scd_system_16tbps):
        mapped = map_inference(
            LLAMA_405B, scd_system_16tbps, batch=8, input_tokens=200, output_tokens=5
        )
        assert list(mapped.decode_contexts()) == [200, 201, 202, 203, 204]

    def test_decode_contexts_constant_space(self, scd_system_16tbps):
        """decode_contexts is O(1): no output_tokens-length list materialized."""
        mapped = map_inference(
            LLAMA_405B,
            scd_system_16tbps,
            batch=8,
            input_tokens=200,
            output_tokens=10**9,
        )
        contexts = mapped.decode_contexts()
        assert isinstance(contexts, range)
        assert len(contexts) == 10**9
        assert contexts[0] == 200
        assert contexts[-1] == 200 + 10**9 - 1
        assert mapped.decode_context_at(0) == 200
        assert mapped.decode_context_at(10**9 - 1) == 200 + 10**9 - 1
        with pytest.raises(IndexError):
            mapped.decode_context_at(10**9)

    def test_kv_cache_at_context_window(self, scd_system_16tbps):
        mapped = map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        assert mapped.kv_cache_bytes == pytest.approx(
            LLAMA_405B.kv_cache_bytes(8)
        )

    def test_fits_memory_flags(self, scd_system_16tbps, gpu_system):
        small = map_inference(LLAMA_405B, gpu_system, batch=8)
        assert small.fits_memory
        huge = map_inference(LLAMA_405B, gpu_system, batch=256)
        assert not huge.fits_memory

    def test_kv_residency_annotated(self, scd_system_16tbps):
        mapped = map_inference(LLAMA_405B, scd_system_16tbps, batch=8)
        ops = mapped.decode_ops_at(300)
        score = next(
            op for op in ops
            if isinstance(op, ComputeKernel) and op.kind is KernelKind.ATTN_SCORE
        )
        assert score.resident_set_bytes == pytest.approx(
            LLAMA_405B.kv_cache_bytes(8)
        )

    def test_pp_inference_rejected(self, scd_system_16tbps):
        with pytest.raises(MappingError):
            map_inference(
                LLAMA_405B,
                scd_system_16tbps,
                parallel=ParallelConfig(tensor_parallel=8, pipeline_parallel=8),
                batch=8,
            )
