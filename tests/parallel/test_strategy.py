"""ParallelConfig tests."""

from __future__ import annotations

import pytest

from repro.errors import MappingError
from repro.parallel.strategy import ParallelConfig, enumerate_strategies
from repro.workloads.llm import GPT3_76B


class TestValidation:
    def test_world_size(self):
        assert ParallelConfig(8, 8, 1).world_size == 64

    def test_valid_paper_config(self):
        ParallelConfig(8, 8, 1).validate(GPT3_76B, 64, 64)

    def test_world_size_mismatch(self):
        with pytest.raises(MappingError, match="does not match"):
            ParallelConfig(8, 4, 1).validate(GPT3_76B, 64, 64)

    def test_heads_divisibility(self):
        with pytest.raises(MappingError, match="heads"):
            ParallelConfig(3, 1, 1).validate(GPT3_76B, 3, 12)

    def test_pp_bounded_by_layers(self):
        with pytest.raises(MappingError, match="exceeds"):
            ParallelConfig(1, 64, 1).validate(GPT3_76B.with_layers(32), 64, 64)

    def test_batch_divisible_by_dp(self):
        with pytest.raises(MappingError, match="batch"):
            ParallelConfig(8, 1, 8).validate(GPT3_76B, 64, 63)

    def test_microbatch_divides_per_replica_batch(self):
        with pytest.raises(MappingError, match="microbatch"):
            ParallelConfig(8, 8, 1, microbatch_size=3).validate(GPT3_76B, 64, 64)


class TestLayerDistribution:
    def test_even_split(self):
        assert ParallelConfig(1, 8, 1).layers_per_stage(96) == [12] * 8

    def test_uneven_split_front_loaded(self):
        # 60 layers over 8 stages: 4 stages of 8, 4 of 7.
        counts = ParallelConfig(1, 8, 1).layers_per_stage(60)
        assert sum(counts) == 60
        assert counts == sorted(counts, reverse=True)
        assert max(counts) - min(counts) == 1

    def test_n_microbatches(self):
        assert ParallelConfig(8, 8, 1).n_microbatches(64) == 64
        assert ParallelConfig(8, 4, 2, microbatch_size=2).n_microbatches(64) == 16

    def test_with_microbatch(self):
        assert ParallelConfig(8, 8, 1).with_microbatch(4).microbatch_size == 4


class TestEnumeration:
    def test_all_valid(self):
        for config in enumerate_strategies(GPT3_76B, 64, 64):
            config.validate(GPT3_76B, 64, 64)

    def test_paper_config_enumerated(self):
        configs = {
            (c.tensor_parallel, c.pipeline_parallel, c.data_parallel)
            for c in enumerate_strategies(GPT3_76B, 64, 64)
        }
        assert (8, 8, 1) in configs
        assert (1, 1, 64) in configs

    def test_space_nontrivial(self):
        assert len(list(enumerate_strategies(GPT3_76B, 64, 64))) > 10
