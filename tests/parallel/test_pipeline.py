"""1F1B pipeline-schedule tests: simulator vs closed form, bubble laws."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.parallel.pipeline import PipelineTiming, analytic_1f1b, simulate_1f1b

times = st.floats(min_value=1e-5, max_value=1e-2)


class TestAgainstClosedForm:
    @given(times, times, st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_uniform_stages_match_formula(self, f, b, p, m):
        result = simulate_1f1b([f] * p, [b] * p, m, p2p_time=0.0)
        assert result.total_time == pytest.approx(
            analytic_1f1b(f, b, p, m, 0.0), rel=1e-9
        )

    def test_single_stage_no_bubble(self):
        result = simulate_1f1b([1e-3], [2e-3], 16)
        assert result.total_time == pytest.approx(16 * 3e-3)
        assert result.bubble_time == pytest.approx(0.0, abs=1e-12)

    def test_paper_bubble_fraction(self):
        # Bubble fraction = (p-1)/(m+p-1) for uniform 1F1B.
        p, m = 8, 64
        result = simulate_1f1b([1e-3] * p, [2e-3] * p, m)
        assert result.bubble_fraction == pytest.approx((p - 1) / (m + p - 1))


class TestProperties:
    @given(times, times, st.integers(min_value=2, max_value=8), st.integers(min_value=1, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_total_at_least_busy(self, f, b, p, m):
        result = simulate_1f1b([f] * p, [b] * p, m)
        assert result.total_time >= max(result.stage_busy_times) - 1e-15

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_more_microbatches_amortize_bubble(self, p):
        few = simulate_1f1b([1e-3] * p, [2e-3] * p, 4)
        many = simulate_1f1b([1e-3] * p, [2e-3] * p, 64)
        assert many.bubble_fraction < few.bubble_fraction

    def test_bottleneck_stage_dominates(self):
        slow = [1e-3, 5e-3, 1e-3, 1e-3]
        result = simulate_1f1b(slow, [t * 2 for t in slow], 32)
        # Total approaches m x bottleneck (fwd+bwd) as m grows.
        assert result.total_time >= 32 * (5e-3 + 10e-3)

    def test_p2p_adds_latency(self):
        without = simulate_1f1b([1e-3] * 4, [2e-3] * 4, 8, p2p_time=0.0)
        with_p2p = simulate_1f1b([1e-3] * 4, [2e-3] * 4, 8, p2p_time=1e-4)
        assert with_p2p.total_time > without.total_time

    def test_non_uniform_stages_supported(self):
        # Uneven 60-layer split: stage times differ; simulator must not
        # deadlock and must respect dependencies.
        fwd = [8e-4, 8e-4, 7e-4, 7e-4]
        bwd = [1.6e-3, 1.6e-3, 1.4e-3, 1.4e-3]
        result = simulate_1f1b(fwd, bwd, 16)
        assert result.total_time > 16 * (8e-4 + 1.6e-3)

    def test_m_less_than_p(self):
        result = simulate_1f1b([1e-3] * 8, [2e-3] * 8, 2)
        assert result.total_time > 0
        assert result.n_microbatches == 2


class TestValidation:
    def test_empty_stages_rejected(self):
        with pytest.raises(MappingError):
            simulate_1f1b([], [], 4)

    def test_mismatched_lists_rejected(self):
        with pytest.raises(MappingError):
            simulate_1f1b([1e-3], [1e-3, 2e-3], 4)

    def test_timing_dataclass(self):
        result = simulate_1f1b([1e-3] * 2, [2e-3] * 2, 4)
        assert isinstance(result, PipelineTiming)
        assert result.n_stages == 2
