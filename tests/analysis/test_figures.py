"""Figure-generator tests (reduced sweeps; full claims live in benchmarks/)."""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    fig5_training_bandwidth_sweep,
    fig6_training_models,
    fig7_inference,
    fig8_inference_speedup,
    l2_kv_cache_study,
    scd_system,
)
from repro.units import TBPS
from repro.workloads.llm import GPT3_18B, LLAMA_70B


class TestFig5:
    def test_reduced_sweep(self):
        fig5 = fig5_training_bandwidth_sweep(
            bandwidths_tbps=(0.5, 16), batch=32, model=GPT3_18B
        )
        assert len(fig5.achieved_pflops_per_spu) == 2
        assert fig5.achieved_pflops_per_spu[1] > fig5.achieved_pflops_per_spu[0]
        assert fig5.gemm_time_per_layer[0] > fig5.gemm_time_per_layer[1]

    def test_reports_attached(self):
        fig5 = fig5_training_bandwidth_sweep(bandwidths_tbps=(8,), batch=32)
        assert fig5.reports[0].model_name == "GPT3-76.1B"


class TestFig6:
    def test_single_model(self):
        fig6 = fig6_training_models(batch=32, models=(GPT3_18B,))
        assert len(fig6.entries) == 1
        entry = fig6.entries[0]
        assert entry.speedup > 2.0
        assert entry.spu.system_name == "SCD blade"
        assert entry.gpu.system_name == "64x H100"


class TestFig7:
    def test_reduced(self):
        fig7 = fig7_inference(
            bandwidths_tbps=(1, 16),
            dram_latencies_ns=(10, 100),
            batches=(4, 16),
            io_tokens=(50, 20),
            model=LLAMA_70B,
        )
        assert fig7.latencies[0] > fig7.latencies[1]
        assert (
            fig7.latency_sweep_pflops_per_spu[0]
            > fig7.latency_sweep_pflops_per_spu[1]
        )
        assert fig7.batch_latencies[1] > fig7.batch_latencies[0]
        assert fig7.gpu_latency > fig7.batch_latencies[0]


class TestFig8:
    def test_reduced(self):
        fig8 = fig8_inference_speedup(
            models=(LLAMA_70B,), batches=(4, 8), io_tokens=(50, 20)
        )
        assert fig8.model_names == ("Llama-70B",)
        assert fig8.model_speedups[0] > 4.0
        assert fig8.kv_cache_bytes[1] == pytest.approx(2 * fig8.kv_cache_bytes[0])
        assert fig8.gpu_memory_capacity == pytest.approx(5.12e12)


class TestL2Study:
    def test_entries(self):
        study = l2_kv_cache_study()
        names = [e.model_name for e in study.entries]
        assert names == ["Llama2-7B", "Llama2-13B", "Llama2-70B"]
        assert study.l2_capacity_bytes == pytest.approx(4.19e9)


class TestHelpers:
    def test_scd_system_bandwidth_override(self):
        system = scd_system(16 * TBPS)
        assert system.accelerator.hierarchy["DRAM"].bandwidth == 16 * TBPS
