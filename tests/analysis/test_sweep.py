"""Sweep-driver tests: grids, structured results, process fan-out."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import SweepGrid, run_sweep
from repro.errors import ConfigError


def scaled_sum(x, y=0.0, scale=1.0):
    """Module-level (hence picklable) point function for fan-out tests."""
    return (x + y) * scale


class TestSweepGrid:
    def test_product_order_first_axis_outermost(self):
        grid = SweepGrid.product(a=(1, 2), b=("x", "y"))
        assert list(grid.points()) == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]
        assert len(grid) == 4
        assert grid.axis("a") == (1, 1, 2, 2)

    def test_zipped_lockstep(self):
        grid = SweepGrid.zipped(a=(1, 2, 3), b=(10, 20, 30))
        assert list(grid.points()) == [
            {"a": 1, "b": 10},
            {"a": 2, "b": 20},
            {"a": 3, "b": 30},
        ]

    def test_zipped_rejects_ragged_axes(self):
        with pytest.raises(ConfigError):
            SweepGrid.zipped(a=(1, 2), b=(1,))

    def test_explicit_points(self):
        grid = SweepGrid.explicit([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert grid.names == ("a", "b")
        assert grid.rows == ((1, 2), (3, 4))

    def test_explicit_rejects_inconsistent_keys(self):
        with pytest.raises(ConfigError):
            SweepGrid.explicit([{"a": 1}, {"b": 2}])

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError):
            SweepGrid.product()
        with pytest.raises(ConfigError):
            SweepGrid.explicit([])


class TestRunSweep:
    def test_serial_values_in_grid_order(self):
        result = run_sweep(scaled_sum, SweepGrid.product(x=(1.0, 2.0, 3.0)))
        assert result.values() == (1.0, 2.0, 3.0)
        assert result.axis("x") == (1.0, 2.0, 3.0)

    def test_common_kwargs_passed_to_every_point(self):
        result = run_sweep(
            scaled_sum,
            SweepGrid.product(x=(1.0, 2.0)),
            common={"y": 1.0, "scale": 10.0},
        )
        assert result.values() == (20.0, 30.0)

    def test_series_with_callable_and_attribute(self):
        result = run_sweep(complex, SweepGrid.product(real=(1.0, 2.0)))
        assert result.series(lambda v: v.real) == (1.0, 2.0)
        assert result.series("imag") == (0.0, 0.0)

    def test_where_filters_points(self):
        result = run_sweep(scaled_sum, SweepGrid.product(x=(1.0, 2.0), y=(0.0, 5.0)))
        sub = result.where(y=5.0)
        assert sub.axis("x") == (1.0, 2.0)
        assert sub.values() == (6.0, 7.0)

    def test_where_with_no_matches_is_empty(self):
        result = run_sweep(scaled_sum, SweepGrid.product(x=(1.0, 2.0)))
        empty = result.where(x=99.0)
        assert len(empty) == 0
        assert empty.values() == ()
        assert empty.grid.names == ("x",)

    def test_explicit_accepts_reordered_keys(self):
        grid = SweepGrid.explicit([{"a": 1, "b": 2}, {"b": 4, "a": 3}])
        assert grid.rows == ((1, 2), (3, 4))

    def test_point_indexing(self):
        result = run_sweep(scaled_sum, SweepGrid.product(x=(4.0,)))
        assert result.points[0]["x"] == 4.0
        assert result.points[0].value == 4.0

    def test_process_fanout_matches_serial(self):
        grid = SweepGrid.product(x=(1.0, 2.0, 3.0, 4.0), y=(0.5, 1.5))
        serial = run_sweep(scaled_sum, grid, common={"scale": 2.0})
        fanned = run_sweep(scaled_sum, grid, common={"scale": 2.0}, workers=2)
        assert fanned.values() == serial.values()

    def test_unpicklable_fn_falls_back_to_serial(self):
        grid = SweepGrid.product(x=(1.0, 2.0))
        result = run_sweep(lambda x: x * 3, grid, workers=2)
        assert result.values() == (3.0, 6.0)

    def test_unavailable_start_method_falls_back_to_serial(self, monkeypatch):
        """A bogus FANOUT_START_METHOD degrades like any pool failure."""
        from repro.analysis import sweep as sweep_module

        monkeypatch.setattr(
            sweep_module, "FANOUT_START_METHOD", "no-such-method"
        )
        grid = SweepGrid.product(x=(1.0, 2.0))
        result = run_sweep(scaled_sum, grid, common={"scale": 2.0}, workers=2)
        assert result.values() == (2.0, 4.0)

    def test_point_error_propagates(self):
        def boom(x):
            raise ValueError("bad point")

        with pytest.raises(ValueError, match="bad point"):
            run_sweep(boom, SweepGrid.product(x=(1,)))


class TestFigureSweepIntegration:
    def test_fig5_with_workers_matches_serial(self):
        from repro.analysis.figures import fig5_training_bandwidth_sweep

        serial = fig5_training_bandwidth_sweep(bandwidths_tbps=(1, 16))
        fanned = fig5_training_bandwidth_sweep(bandwidths_tbps=(1, 16), workers=2)
        assert fanned.achieved_pflops_per_spu == pytest.approx(
            serial.achieved_pflops_per_spu, rel=1e-12
        )
        assert fanned.gemm_time_per_layer == pytest.approx(
            serial.gemm_time_per_layer, rel=1e-12
        )


class TestCsvPersistence:
    def test_scalar_values_round_trip(self, tmp_path):
        result = run_sweep(
            scaled_sum, SweepGrid.product(x=(1.0, 2.0), y=(0.5, 1.5))
        )
        path = tmp_path / "sweep.csv"
        result.to_csv(path)

        from repro.analysis.sweep import SweepResult

        loaded = SweepResult.from_csv(path)
        assert loaded.grid.names == result.grid.names
        assert loaded.grid.rows == result.grid.rows
        assert loaded.values() == result.values()

    def test_mapping_values_round_trip(self, tmp_path):
        def point(x):
            return {"double": 2 * x, "label": f"p{x}", "none": None}

        result = run_sweep(point, SweepGrid.product(x=(1, 2)))
        path = tmp_path / "sweep.csv"
        result.to_csv(path)

        from repro.analysis.sweep import SweepResult

        loaded = SweepResult.from_csv(path)
        assert loaded.points[0].value == {"double": 2, "label": "p1", "none": None}
        assert loaded.axis("x") == (1, 2)

    def test_dataclass_values_flatten_scalar_fields(self, tmp_path):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Report:
            latency: float
            name: str
            payload: tuple  # non-scalar: dropped from the CSV

        result = run_sweep(
            lambda x: Report(latency=x * 0.5, name=f"r{x}", payload=(x,)),
            SweepGrid.product(x=(2, 4)),
        )
        path = tmp_path / "sweep.csv"
        result.to_csv(path)

        from repro.analysis.sweep import SweepResult

        loaded = SweepResult.from_csv(path)
        assert loaded.points[0].value == {"latency": 1.0, "name": "r2"}

    def test_from_csv_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("a,b\n1,2\n")
        from repro.analysis.sweep import SweepResult

        with pytest.raises(ConfigError, match="axes"):
            SweepResult.from_csv(path)
