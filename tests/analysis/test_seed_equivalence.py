"""Figure-level seed equivalence: the timing engine must be invisible.

``tests/data/seed_figures_golden.json`` holds every Fig. 5–8 series as
produced by the seed's flat, uncached timing path (captured before the
op-program engine landed).  The engine rewrite is a pure performance
change, so regenerating the figures must reproduce those numbers within
1e-9 relative tolerance.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.figures import (
    fig5_training_bandwidth_sweep,
    fig6_training_models,
    fig7_inference,
    fig8_inference_speedup,
)

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "seed_figures_golden.json"

REL = 1e-9


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def assert_series(actual, expected):
    assert len(actual) == len(expected)
    assert tuple(actual) == pytest.approx(tuple(expected), rel=REL)


class TestSeedEquivalence:
    def test_fig5_series_match_seed(self, golden):
        fig5 = fig5_training_bandwidth_sweep()
        g = golden["fig5"]
        assert_series(fig5.bandwidths, g["bandwidths"])
        assert_series(fig5.achieved_pflops_per_spu, g["achieved_pflops_per_spu"])
        assert_series(fig5.gemm_time_per_layer, g["gemm_time_per_layer"])
        assert_series(fig5.gemm_memory_bound_time, g["gemm_memory_bound_time"])
        assert_series(fig5.gemm_compute_bound_time, g["gemm_compute_bound_time"])

    def test_fig6_series_match_seed(self, golden):
        fig6 = fig6_training_models()
        g = golden["fig6"]
        assert [e.model_name for e in fig6.entries] == g["models"]
        assert_series(
            [e.spu.time_per_batch for e in fig6.entries], g["spu_time_per_batch"]
        )
        assert_series(
            [e.gpu.time_per_batch for e in fig6.entries], g["gpu_time_per_batch"]
        )
        assert_series(fig6.speedups, g["speedups"])

    def test_fig7_series_match_seed(self, golden):
        fig7 = fig7_inference()
        g = golden["fig7"]
        assert_series(fig7.latencies, g["latencies"])
        assert_series(
            fig7.latency_sweep_pflops_per_spu, g["latency_sweep_pflops_per_spu"]
        )
        assert_series(fig7.batch_latencies, g["batch_latencies"])
        assert_series(fig7.batch_pflops_per_spu, g["batch_pflops_per_spu"])
        assert fig7.gpu_latency == pytest.approx(g["gpu_latency"], rel=REL)
        assert fig7.gpu_pflops_per_pu == pytest.approx(
            g["gpu_pflops_per_pu"], rel=REL
        )

    def test_fig8_series_match_seed(self, golden):
        fig8 = fig8_inference_speedup()
        g = golden["fig8"]
        assert list(fig8.model_names) == g["model_names"]
        assert_series(fig8.model_speedups, g["model_speedups"])
        assert_series(fig8.batch_speedups, g["batch_speedups"])
        assert_series(fig8.kv_cache_bytes, g["kv_cache_bytes"])
