"""Sensitivity-analysis tests (reduced workload; full sweep in benchmarks/)."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    SensitivityEntry,
    inference_speedup_sensitivity,
)
from repro.workloads.llm import LLAMA_70B


class TestEntry:
    def test_swing_and_worst_case(self):
        entry = SensitivityEntry(
            parameter="p",
            low_setting=1.0,
            high_setting=2.0,
            speedup_at_low=6.0,
            speedup_at_high=10.0,
            baseline_speedup=8.0,
        )
        assert entry.swing == pytest.approx(4.0)
        assert entry.worst_case == pytest.approx(6.0)


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return inference_speedup_sensitivity(
            model=LLAMA_70B, io_tokens=(40, 20)
        )

    def test_all_knobs_present(self, result):
        names = [e.parameter for e in result.entries]
        assert len(names) == 4
        assert any("stream" in n for n in names)
        assert any("outstanding" in n for n in names)

    def test_baseline_within_every_range_or_near(self, result):
        for entry in result.entries:
            low = min(entry.speedup_at_low, entry.speedup_at_high)
            high = max(entry.speedup_at_low, entry.speedup_at_high)
            assert low <= result.baseline_speedup * 1.05
            assert high >= result.baseline_speedup * 0.95

    def test_conclusion_robust(self, result):
        assert all(entry.worst_case > 3.0 for entry in result.entries)

    def test_tornado_ordering(self, result):
        swings = [e.swing for e in result.sorted_by_swing()]
        assert swings == sorted(swings, reverse=True)
