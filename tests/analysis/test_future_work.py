"""JSRAM-main-memory study tests (future-work extension)."""

from __future__ import annotations

import pytest

from repro.analysis.figures import jsram_main_memory_study
from repro.units import GB
from repro.workloads.llm import LLAMA2_7B


class TestJSRAMStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return jsram_main_memory_study(
            capacities=(4.19 * GB, 32 * GB, 64 * GB), io_tokens=(100, 50)
        )

    def test_small_pool_fits_nothing(self, study):
        small = [e for e in study.entries if e.jsram_capacity_bytes == 4.19 * GB]
        assert all(not e.fits for e in small)
        assert all(e.speedup == 1.0 for e in small)

    def test_32gb_fits_7b_not_13b(self, study):
        at32 = {e.model_name: e for e in study.entries if e.jsram_capacity_bytes == 32 * GB}
        assert at32["Llama2-7B"].fits
        assert not at32["Llama2-13B"].fits

    def test_jsram_residency_speeds_up_inference(self, study):
        fitting = [e for e in study.entries if e.fits]
        assert fitting, "no fitting configuration in the sweep"
        for entry in fitting:
            assert entry.speedup > 1.3
            assert entry.latency_jsram < entry.latency_dram

    def test_footprint_accounting(self, study):
        entry = next(e for e in study.entries if e.model_name == "Llama2-7B")
        expected = LLAMA2_7B.weight_bytes() + LLAMA2_7B.kv_cache_bytes(8)
        assert entry.footprint_bytes == pytest.approx(expected)
