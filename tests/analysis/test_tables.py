"""Table-generator tests."""

from __future__ import annotations

from repro.analysis.tables import (
    blade_spec_table,
    datalink_table,
    render_two_column,
    table1_technology,
)


class TestTable1:
    def test_contains_headline_values(self):
        text = table1_technology()
        assert "30GHz" in text
        assert "Josephson Junction" in text
        assert "JSRAM" in text


class TestDatalinkTable:
    def test_rows(self):
        rows = datalink_table()
        names = [r[0] for r in rows]
        assert "Wire Width" in names
        assert "No. of wires" in names
        by_name = {r[0]: r for r in rows}
        assert by_name["No. of wires"][1] == "20,000"
        assert by_name["No. of wires"][2] == "10,000"
        assert "20 TBps" in by_name["Bandwidth"][1]


class TestBladeTable:
    def test_rows(self):
        rows = dict(blade_spec_table())
        assert rows["No. of SPUs"] == "64 (8 x 8)"
        assert "30 TBps" in rows["Bi-directional Main Memory bandwidth"]

    def test_render_two_column_rectangular(self):
        text = render_two_column(blade_spec_table(), ("Parameter", "Value"))
        widths = {len(line) for line in text.splitlines()}
        assert len(widths) == 1


class TestRenderColumns:
    def test_empty_rows_render_header_only(self):
        from repro.analysis.tables import render_columns

        text = render_columns([], ("a", "bb"))
        assert "| a | bb |" in text

    def test_two_column_delegates_to_render_columns(self):
        from repro.analysis.tables import render_columns, render_two_column

        rows = [("x", "1"), ("longer", "2")]
        assert render_two_column(rows, ("p", "v")) == render_columns(
            rows, ("p", "v")
        )
