"""Failure-injection / degradation studies.

A production release must behave sensibly when components are derated:
bump-yield loss, dead JSRAM dies, a half-populated datalink, a slow
cryocooler stage.  Each test degrades one substrate parameter and checks
the system-level effect has the right sign and a sane magnitude.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.arch.blade import SCDBlade, build_blade
from repro.arch.spu import SPUStack
from repro.core.model import Optimus
from repro.interconnect.packaging import BumpField
from repro.parallel.mapper import map_inference, map_training
from repro.parallel.strategy import ParallelConfig
from repro.units import TBPS
from repro.workloads.llm import GPT3_76B, LLAMA_405B

PAPER = ParallelConfig(8, 8, 1)


def degraded_blade(**component_overrides) -> SCDBlade:
    blade = build_blade()
    return replace(blade, **component_overrides)


class TestBumpYieldLoss:
    def test_higher_redundancy_lowers_link_bandwidth(self):
        healthy = build_blade()
        worn = degraded_blade(
            chip_link=replace(healthy.chip_link, redundancy=0.7)
        )
        assert worn.spu_link_bandwidth < healthy.spu_link_bandwidth
        # Fabric bandwidth follows the bump budget.
        assert worn.fabric().bandwidth < healthy.fabric().bandwidth

    def test_training_comm_suffers(self):
        healthy = build_blade().system().with_dram_bandwidth(16 * TBPS)
        worn_blade = degraded_blade(
            chip_link=BumpField(name="degraded", redundancy=0.9)
        )
        worn = worn_blade.system().with_dram_bandwidth(16 * TBPS)
        t_healthy = Optimus(healthy).evaluate_training(
            map_training(GPT3_76B, healthy, PAPER, 64)
        )
        t_worn = Optimus(worn).evaluate_training(
            map_training(GPT3_76B, worn, PAPER, 64)
        )
        assert t_worn.comm_time > t_healthy.comm_time
        assert t_worn.time_per_batch >= t_healthy.time_per_batch


class TestDeadJSRAMDie:
    def test_smaller_l1_never_helps(self):
        healthy = build_blade()
        crippled = replace(healthy, spu=SPUStack(n_l1_dies=1))
        assert crippled.l1_capacity_bytes < healthy.l1_capacity_bytes
        h_sys = healthy.system().with_dram_bandwidth(2 * TBPS)
        c_sys = crippled.system().with_dram_bandwidth(2 * TBPS)
        t_h = Optimus(h_sys).evaluate_training(
            map_training(GPT3_76B, h_sys, PAPER, 32)
        ).time_per_batch
        t_c = Optimus(c_sys).evaluate_training(
            map_training(GPT3_76B, c_sys, PAPER, 32)
        ).time_per_batch
        assert t_c >= t_h


class TestDatalinkDegradation:
    def test_half_wires_halves_bandwidth(self):
        healthy = build_blade()
        degraded = replace(healthy, datalink=healthy.datalink.scaled(0.5))
        assert degraded.main_memory_bandwidth == pytest.approx(
            healthy.main_memory_bandwidth / 2
        )

    def test_inference_latency_rises(self):
        healthy = build_blade()
        degraded = replace(healthy, datalink=healthy.datalink.scaled(0.5))
        h_sys, d_sys = healthy.system(), degraded.system()
        lat_h = Optimus(h_sys).evaluate_inference(
            map_inference(LLAMA_405B, h_sys, batch=8, output_tokens=20)
        ).latency
        lat_d = Optimus(d_sys).evaluate_inference(
            map_inference(LLAMA_405B, d_sys, batch=8, output_tokens=20)
        ).latency
        assert lat_d > lat_h
        assert lat_d / lat_h < 2.5  # latency terms keep it sub-proportional


class TestThermalDegradation:
    def test_hot_dram_stage(self):
        """A struggling 77 K stage shows up as extra access latency."""
        base = build_blade().system().with_dram_bandwidth(16 * TBPS)
        hot = base.with_dram_latency(120e-9)
        lat_cold = Optimus(base).evaluate_inference(
            map_inference(LLAMA_405B, base, batch=8, output_tokens=20)
        ).latency
        lat_hot = Optimus(hot).evaluate_inference(
            map_inference(LLAMA_405B, hot, batch=8, output_tokens=20)
        ).latency
        assert lat_hot > 1.5 * lat_cold
