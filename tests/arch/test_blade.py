"""SPU/SNU/blade assembly tests: the Fig. 3c derivation chain."""

from __future__ import annotations

import pytest

from repro.arch.blade import build_blade
from repro.arch.snu import build_snu, build_snu_group, shared_l2_spec
from repro.arch.spu import build_spu
from repro.units import GB, TBPS


class TestSPU:
    def test_baseline_l1_is_24mb(self):
        spu = build_spu()
        assert spu.l1_dcache.capacity_bytes == pytest.approx(24e6, rel=0.01)

    def test_l1_capacity_override(self):
        spu = build_spu(l1_capacity_bytes=48e6)
        assert spu.n_l1_dies == 8

    def test_die_stack_count(self):
        # compute + control/switch base + HP + 4 HD = 7 dies.
        assert build_spu().n_dies == 7

    def test_total_jj_dominated_by_known_parts(self):
        spu = build_spu()
        assert spu.total_jj > spu.compute.mac_count * spu.compute.mac_jj


class TestSNU:
    def test_snu_group_capacity(self):
        snus = build_snu_group(3.375 * GB, 16)
        assert len(snus) == 16
        total = sum(s.l2_capacity_bytes for s in snus)
        assert total == pytest.approx(3.375e9)

    def test_snu_die_count_derived(self):
        snu = build_snu()
        assert snu.n_l2_dies >= 1
        assert snu.n_l2_dies * snu.l2_die.capacity_bytes >= snu.l2_capacity_bytes

    def test_shared_l2_spec(self):
        spec = shared_l2_spec()
        assert spec.shared
        assert spec.capacity_bytes == pytest.approx(3.375e9)


class TestBlade:
    def test_baseline_rows(self, blade):
        rows = dict(blade.spec_rows())
        assert rows["No. of SPUs"] == "64 (8 x 8)"
        assert "2.46" in rows["Peak compute throughput per SPU"] or "2.45" in rows[
            "Peak compute throughput per SPU"
        ]

    def test_bandwidth_is_min_of_datalink_and_dram(self, blade):
        assert blade.main_memory_bandwidth == pytest.approx(
            min(
                blade.datalink.bidirectional_bandwidth,
                blade.dram.internal_bandwidth,
            )
        )

    def test_dram_bandwidth_per_spu(self, blade):
        assert blade.dram_bandwidth_per_spu == pytest.approx(30e12 / 64, rel=0.01)

    def test_fabric_reduction_latency(self, blade):
        from repro.interconnect.collectives import all_reduce_time

        fabric = blade.fabric()
        tiny = all_reduce_time(fabric, 1.0, 64)
        assert tiny == pytest.approx(60e-9, rel=0.02)

    def test_main_hierarchy_has_no_l2(self, blade):
        assert blade.hierarchy().names == ("L1", "DRAM")

    def test_l2_policy_adds_level(self):
        blade = build_blade(l2_policy="l2_kv_cache", l2_total_bytes=4.19 * GB)
        hierarchy = blade.hierarchy()
        assert hierarchy.names == ("L1", "L2", "DRAM")
        assert hierarchy["L2"].capacity_bytes == pytest.approx(4.19e9)

    def test_system_view(self, scd_system):
        assert scd_system.n_accelerators == 64
        assert scd_system.accelerator.name == "SPU"
        assert scd_system.accelerator.memory_capacity_bytes == pytest.approx(
            2.048e12 / 64
        )

    def test_custom_array_size(self):
        blade = build_blade(nx=4, ny=4)
        assert blade.n_spus == 16
        # Shared memory pool splits among fewer SPUs.
        assert blade.dram_bandwidth_per_spu == pytest.approx(30e12 / 16, rel=0.01)


class TestGPUBaseline:
    def test_h100_headline_numbers(self, gpu_system):
        accel = gpu_system.accelerator
        assert accel.peak_flops == pytest.approx(0.9895e15)
        assert accel.hierarchy["DRAM"].bandwidth == pytest.approx(3.35e12)
        assert accel.memory_capacity_bytes == pytest.approx(80e9)

    def test_l2_is_50mb(self, gpu_system):
        assert gpu_system.accelerator.hierarchy["L2"].capacity_bytes == pytest.approx(
            50e6
        )

    def test_total_capacity_5tb(self, gpu_system):
        # The Fig. 8b reference bar: 64 x 80 GB = 5.12 TB.
        assert gpu_system.total_memory_capacity == pytest.approx(5.12e12)

    def test_hierarchical_fabric(self, gpu_system):
        from repro.interconnect.collectives import HierarchicalFabric

        assert isinstance(gpu_system.accelerator.fabric, HierarchicalFabric)
        assert gpu_system.accelerator.fabric.group_size == 8
