"""Accelerator/SystemSpec abstraction tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.system import StreamEfficiency
from repro.units import TBPS


class TestStreamEfficiency:
    def test_flat_default(self):
        eff = StreamEfficiency()
        assert eff.factor(1.0) == 1.0
        assert eff.factor(1e6) == 1.0

    def test_ramp_endpoints(self):
        eff = StreamEfficiency(low_ai_efficiency=0.2, high_ai_efficiency=0.8)
        assert eff.factor(0.0) == pytest.approx(0.2)
        assert eff.factor(float("inf")) == pytest.approx(0.8)

    def test_half_ramp_at_threshold(self):
        eff = StreamEfficiency(
            low_ai_efficiency=0.2, high_ai_efficiency=0.8, ai_threshold=64
        )
        assert eff.factor(64) == pytest.approx(0.5)

    @given(st.floats(min_value=0, max_value=1e6))
    def test_monotone_in_intensity(self, ai):
        eff = StreamEfficiency(low_ai_efficiency=0.2, high_ai_efficiency=0.8)
        assert eff.factor(ai * 2 + 1) >= eff.factor(ai)

    def test_zero_efficiency_rejected(self):
        with pytest.raises(ValueError):
            StreamEfficiency(low_ai_efficiency=0.0)


class TestAccelerator:
    def test_sustained_flops(self, scd_system):
        accel = scd_system.accelerator
        assert accel.sustained_flops == pytest.approx(
            accel.peak_flops * accel.compute_efficiency
        )

    def test_ridge_intensity_uses_effective_bw(self, scd_system_16tbps):
        accel = scd_system_16tbps.accelerator
        ridge = accel.ridge_intensity()
        assert ridge == pytest.approx(
            accel.sustained_flops / accel.hierarchy.last.effective_bandwidth
        )
        # Against L1 the ridge is tiny — on-chip JSRAM feeds the array.
        assert accel.ridge_intensity("L1") < 10

    def test_with_dram_bandwidth_immutably_updates(self, scd_system):
        swept = scd_system.with_dram_bandwidth(16 * TBPS)
        assert swept.accelerator.hierarchy["DRAM"].bandwidth == 16 * TBPS
        assert scd_system.accelerator.hierarchy["DRAM"].bandwidth != 16 * TBPS

    def test_with_dram_latency(self, scd_system):
        swept = scd_system.with_dram_latency(100e-9)
        assert swept.accelerator.hierarchy["DRAM"].latency == 100e-9


class TestSystemSpec:
    def test_totals(self, scd_system):
        accel = scd_system.accelerator
        assert scd_system.total_peak_flops == pytest.approx(64 * accel.peak_flops)
        assert scd_system.total_memory_capacity == pytest.approx(
            64 * accel.memory_capacity_bytes
        )

    def test_total_memory_bandwidth_is_30tbps(self, scd_system):
        assert scd_system.total_memory_bandwidth == pytest.approx(30e12, rel=0.01)

    def test_with_n(self, scd_system):
        assert scd_system.with_n(32).n_accelerators == 32
        assert scd_system.n_accelerators == 64
