"""Multi-blade scaling tests (future-work extension)."""

from __future__ import annotations

import pytest

from repro.arch.multi_blade import InterBladeLink, MultiBladeSystem, build_multi_blade
from repro.core.model import Optimus
from repro.errors import ConfigError
from repro.interconnect.collectives import HierarchicalFabric
from repro.parallel.mapper import map_training
from repro.parallel.strategy import ParallelConfig
from repro.workloads.llm import GPT3_76B


class TestAssembly:
    def test_spu_count(self):
        assert build_multi_blade(2).n_spus == 128
        assert build_multi_blade(4).n_spus == 256

    def test_fabric_is_hierarchical(self):
        fabric = build_multi_blade(2).fabric()
        assert isinstance(fabric, HierarchicalFabric)
        assert fabric.group_size == 64
        assert fabric.inter.alpha > fabric.intra.alpha

    def test_system_name_and_memory(self):
        system = build_multi_blade(2).system()
        assert system.n_accelerators == 128
        # Each blade brings its own 2 TB pool.
        assert system.total_memory_capacity == pytest.approx(2 * 2.048e12)

    def test_link_validation(self):
        with pytest.raises(ConfigError):
            InterBladeLink(bandwidth_per_spu=0)


class TestScaling:
    def test_data_parallel_throughput_scales(self):
        """The paper's expectation: performance scales with blade count."""
        tokens_per_second = []
        for n_blades in (1, 2, 4):
            system = build_multi_blade(n_blades).system().with_dram_bandwidth(16e12)
            parallel = ParallelConfig(8, 8, n_blades)
            report = Optimus(system).evaluate_training(
                map_training(GPT3_76B, system, parallel, 64 * n_blades)
            )
            tokens_per_second.append(report.tokens_per_second)
        assert tokens_per_second[1] / tokens_per_second[0] > 1.9
        assert tokens_per_second[2] / tokens_per_second[0] > 3.7

    def test_cross_blade_allreduce_costs_more(self):
        mb = build_multi_blade(2)
        fabric = mb.fabric()
        intra = fabric.all_reduce_time(1e6, 64)
        cross = fabric.all_reduce_time(1e6, 128)
        assert cross > intra

    def test_slow_links_hurt_dp(self):
        slow = build_multi_blade(2, link=InterBladeLink(bandwidth_per_spu=1e10))
        fast = build_multi_blade(2, link=InterBladeLink(bandwidth_per_spu=4e12))
        parallel = ParallelConfig(8, 8, 2)
        t_slow = Optimus(slow.system().with_dram_bandwidth(16e12)).evaluate_training(
            map_training(GPT3_76B, slow.system().with_dram_bandwidth(16e12), parallel, 128)
        ).time_per_batch
        t_fast = Optimus(fast.system().with_dram_bandwidth(16e12)).evaluate_training(
            map_training(GPT3_76B, fast.system().with_dram_bandwidth(16e12), parallel, 128)
        ).time_per_batch
        assert t_slow > t_fast
