"""GPU-baseline builder tests."""

from __future__ import annotations

import pytest

from repro.arch.gpu import (
    H100Specs,
    build_gpu_system,
    h100_accelerator,
    h100_fabric,
    h100_hierarchy,
)
from repro.errors import ConfigError
from repro.interconnect.collectives import CollectiveAlgorithm


class TestHierarchy:
    def test_level_order(self):
        hierarchy = h100_hierarchy()
        assert hierarchy.names == ("L1", "L2", "DRAM")

    def test_hbm_no_bdp_limit(self):
        # GPUs hide DRAM latency with deep memory-level parallelism.
        dram = h100_hierarchy()["DRAM"]
        assert dram.outstanding_bytes is None
        assert dram.effective_bandwidth == dram.bandwidth

    def test_bandwidth_ordering(self):
        hierarchy = h100_hierarchy()
        assert (
            hierarchy["L1"].bandwidth
            > hierarchy["L2"].bandwidth
            > hierarchy["DRAM"].bandwidth
        )


class TestFabric:
    def test_intra_uses_switch_reduction(self):
        fabric = h100_fabric()
        assert fabric.intra.algorithm is CollectiveAlgorithm.SWITCH_REDUCTION
        assert fabric.inter.algorithm is CollectiveAlgorithm.RING

    def test_nvlink_faster_than_ib(self):
        fabric = h100_fabric()
        assert fabric.intra.bandwidth > fabric.inter.bandwidth


class TestBuilders:
    def test_custom_specs_propagate(self):
        specs = H100Specs(hbm_bandwidth=2e12)
        accel = h100_accelerator(specs)
        assert accel.hierarchy["DRAM"].bandwidth == 2e12

    def test_system_name(self):
        assert build_gpu_system(8).name == "8x H100"

    def test_zero_gpus_rejected(self):
        with pytest.raises(ConfigError):
            build_gpu_system(0)

    def test_stream_efficiency_asymmetric(self):
        accel = h100_accelerator()
        assert accel.stream_efficiency.factor(1.0) < 0.3
        assert accel.stream_efficiency.factor(1e5) > 0.8
