"""Compute-die and control-complex tests."""

from __future__ import annotations

import pytest

from repro.arch.compute import PAPER_MAC_JJ, ComputeDie, mac_jj_from_flow
from repro.arch.control import ControlComplex


class TestComputeDie:
    def test_peak_is_245_pflops(self):
        die = ComputeDie()
        assert 2.40e15 <= die.peak_flops <= 2.50e15  # paper: ~2.45

    def test_mac_count_bottom_up(self):
        # ~41k MACs, not the paper's inconsistent "400k" (DESIGN.md #3).
        die = ComputeDie()
        assert 40_000 <= die.mac_count <= 42_000

    def test_jj_budget(self):
        assert ComputeDie().jj_budget == pytest.approx(576e6)

    def test_mac_array_fits_budget(self):
        die = ComputeDie()
        assert die.mac_count * die.mac_jj <= die.jj_budget

    def test_sustained_at_80_percent(self):
        die = ComputeDie()
        assert die.sustained_flops == pytest.approx(0.8 * die.peak_flops)

    def test_power_is_watts_scale(self):
        # Petaflops at single-digit watts: the paper's "fraction of the
        # on-chip power (100x less)" headline.
        power = ComputeDie().power_watts
        assert 0.1 < power < 20

    def test_flow_mac_close_to_paper_value(self):
        flow_jj = mac_jj_from_flow()
        assert abs(flow_jj - PAPER_MAC_JJ) / PAPER_MAC_JJ < 0.15

    def test_peak_scales_with_area(self):
        small = ComputeDie(area_mm2=72)
        assert small.peak_flops == pytest.approx(ComputeDie().peak_flops / 2, rel=0.01)


class TestControlComplex:
    def test_dual_core(self):
        assert ControlComplex().n_cores == 2

    def test_dispatch_latency_sub_ns(self):
        assert ControlComplex().dispatch_latency < 1e-9

    def test_jj_budget_reasonable(self):
        control = ControlComplex()
        # Small versus the 327 MJJ MAC array but non-trivial.
        assert 1e6 < control.total_jj < 1e9
        assert control.directory_jj > 0
