"""Kernel-vocabulary tests: FLOP/byte accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workloads.operators import (
    CommPattern,
    ComputeKernel,
    KernelKind,
    all_reduce,
    elementwise,
    embedding_lookup,
    gemm,
    layernorm,
    optimizer_step,
    point_to_point,
    softmax,
)

dims = st.integers(min_value=1, max_value=4096)


class TestGEMM:
    @given(dims, dims, dims)
    @settings(max_examples=30, deadline=None)
    def test_flops_and_bytes(self, m, n, k):
        kernel = gemm("g", m, n, k)
        assert kernel.flops == 2.0 * m * n * k
        assert kernel.bytes_total == 2.0 * (m * k + k * n + m * n)

    def test_batched(self):
        single = gemm("g", 128, 128, 64)
        batched = gemm("g", 128, 128, 64, batch=10)
        assert batched.flops == pytest.approx(10 * single.flops)
        assert batched.bytes_total == pytest.approx(10 * single.bytes_total)

    def test_weight_bytes_tagged(self):
        weighted = gemm("g", 128, 256, 512, weight_operand=True)
        act_only = gemm("g", 128, 256, 512, weight_operand=False)
        assert weighted.weight_bytes == pytest.approx(512 * 256 * 2.0)
        assert act_only.weight_bytes == 0.0

    @given(dims, dims, dims)
    @settings(max_examples=30, deadline=None)
    def test_arithmetic_intensity_bounded_by_min_dim(self, m, n, k):
        kernel = gemm("g", m, n, k)
        # AI = mnk/(mk+kn+mn) <= min(m,n,k) for bf16 operands (b=2).
        assert kernel.arithmetic_intensity <= min(m, n, k) + 1e-9

    def test_is_gemm_flag(self):
        assert gemm("g", 8, 8, 8).is_gemm
        assert gemm("g", 8, 8, 8, kind=KernelKind.ATTN_SCORE).is_gemm
        assert not softmax("s", 100).is_gemm


class TestOtherKernels:
    def test_softmax_bytes(self):
        kernel = softmax("s", 1000)
        assert kernel.bytes_total == 2 * 1000 * 2.0
        assert kernel.flops == 5000

    def test_layernorm(self):
        kernel = layernorm("ln", 1000)
        assert kernel.kind is KernelKind.LAYERNORM
        assert kernel.bytes_total == 4000

    def test_elementwise_inputs(self):
        two_in = elementwise("e", 1000, n_inputs=2)
        assert two_in.bytes_read == 2 * 1000 * 2.0
        assert two_in.bytes_written == 1000 * 2.0

    def test_embedding_is_pure_movement(self):
        kernel = embedding_lookup("emb", 100, 4096)
        assert kernel.flops == 0.0
        assert kernel.arithmetic_intensity == 0.0
        assert kernel.bytes_total > 0

    def test_optimizer_deeply_memory_bound(self):
        kernel = optimizer_step("adam", 1e9)
        assert kernel.arithmetic_intensity < 1.0

    def test_working_set_defaults_to_bytes(self):
        kernel = gemm("g", 8, 8, 8)
        assert kernel.working_set_bytes == kernel.bytes_total

    def test_placement_uses_residency(self):
        kernel = gemm("g", 8, 8, 8).with_residency(1e9)
        assert kernel.placement_bytes == 1e9

    def test_scaled(self):
        kernel = gemm("g", 8, 8, 8).scaled(3.0)
        assert kernel.flops == pytest.approx(3 * 2 * 8**3)

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigError):
            ComputeKernel(
                name="bad", kind=KernelKind.GEMM, flops=-1,
                bytes_read=0, bytes_written=0,
            )


class TestCommKernels:
    def test_all_reduce(self):
        kernel = all_reduce("ar", 1e6, 8)
        assert kernel.pattern is CommPattern.ALL_REDUCE
        assert kernel.participants == 8

    def test_overlap_fraction_validated(self):
        with pytest.raises(ValueError):
            all_reduce("ar", 1e6, 8, overlap_fraction=1.5)

    def test_point_to_point(self):
        kernel = point_to_point("p2p", 1e6)
        assert kernel.participants == 2
