"""Transformer kernel-builder tests: FLOP identities and sharding laws."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workloads.llm import GPT3_76B, MOE_132B
from repro.workloads.operators import CommKernel, ComputeKernel, KernelKind
from repro.workloads.transformer import (
    LayerShape,
    backward_ops,
    expected_touched_experts,
    layer_forward_ops,
    lm_head_ops,
    total_compute_flops,
)


def fwd_flops(tp: int, n_tokens: int = 2048) -> float:
    shape = LayerShape(n_tokens=n_tokens, batch_seqs=1, kv_len=n_tokens, tp=tp)
    return total_compute_flops(layer_forward_ops(GPT3_76B, shape))


class TestShardingLaws:
    @pytest.mark.parametrize("tp", [2, 4, 8])
    def test_gemm_flops_divide_by_tp(self, tp):
        # Per-device FLOPs scale ~1/tp (norms/softmax are replicated but
        # GEMMs dominate).
        ratio = fwd_flops(1) / fwd_flops(tp)
        assert ratio == pytest.approx(tp, rel=0.05)

    def test_analytic_layer_flops(self):
        """Dense layer ≈ 2 tokens (12 h² + ctx·h attention GEMM term)."""
        h = GPT3_76B.hidden
        tokens = 2048
        analytic = 2 * tokens * (12 * h * h) + 4 * tokens * tokens * h
        assert fwd_flops(1) == pytest.approx(analytic, rel=0.02)

    def test_allreduce_count_megatron(self):
        shape = LayerShape(n_tokens=2048, batch_seqs=1, kv_len=2048, tp=8)
        ops = layer_forward_ops(GPT3_76B, shape)
        comms = [op for op in ops if isinstance(op, CommKernel)]
        assert len(comms) == 2  # attention + MLP all-reduce
        for comm in comms:
            assert comm.n_bytes == 2048 * GPT3_76B.hidden * 2.0

    def test_no_allreduce_without_tp(self):
        shape = LayerShape(n_tokens=2048, batch_seqs=1, kv_len=2048, tp=1)
        ops = layer_forward_ops(GPT3_76B, shape)
        assert not any(isinstance(op, CommKernel) for op in ops)

    def test_tp_must_divide_heads(self):
        shape = LayerShape(n_tokens=128, batch_seqs=1, kv_len=128, tp=7)
        with pytest.raises(ConfigError):
            layer_forward_ops(GPT3_76B, shape)

    def test_tokens_divisible_by_seqs(self):
        with pytest.raises(ConfigError):
            LayerShape(n_tokens=100, batch_seqs=3, kv_len=10)


class TestBackward:
    def test_bwd_flops_twice_fwd(self):
        shape = LayerShape(n_tokens=2048, batch_seqs=1, kv_len=2048, tp=8)
        fwd = layer_forward_ops(GPT3_76B, shape)
        bwd = backward_ops(fwd)
        assert total_compute_flops(bwd) == pytest.approx(
            2 * total_compute_flops(fwd), rel=0.02
        )

    def test_bwd_repeats_collectives(self):
        shape = LayerShape(n_tokens=2048, batch_seqs=1, kv_len=2048, tp=8)
        fwd = layer_forward_ops(GPT3_76B, shape)
        bwd = backward_ops(fwd)
        assert sum(isinstance(op, CommKernel) for op in bwd) == 2

    def test_gemms_split_into_dgrad_wgrad(self):
        shape = LayerShape(n_tokens=128, batch_seqs=1, kv_len=128, tp=1)
        fwd = layer_forward_ops(GPT3_76B, shape)
        bwd = backward_ops(fwd)
        n_fwd_gemm = sum(
            1 for op in fwd if isinstance(op, ComputeKernel) and op.is_gemm
        )
        n_bwd_gemm = sum(
            1 for op in bwd if isinstance(op, ComputeKernel) and op.is_gemm
        )
        assert n_bwd_gemm == 2 * n_fwd_gemm


class TestAttentionShapes:
    def test_decode_kernels_scale_with_context(self):
        short = LayerShape(n_tokens=8, batch_seqs=8, kv_len=100, tp=8)
        long = LayerShape(n_tokens=8, batch_seqs=8, kv_len=400, tp=8)
        t_short = total_compute_flops(layer_forward_ops(GPT3_76B, short))
        t_long = total_compute_flops(layer_forward_ops(GPT3_76B, long))
        assert t_long > t_short

    def test_score_kernel_intensity_near_head_dim(self):
        shape = LayerShape(n_tokens=2048, batch_seqs=1, kv_len=2048, tp=8)
        ops = layer_forward_ops(GPT3_76B, shape)
        score = next(
            op for op in ops
            if isinstance(op, ComputeKernel) and op.kind is KernelKind.ATTN_SCORE
        )
        # AI = d/(1 + 2d/s) ≈ 114 for d=128, s=2048 — the kernels whose
        # crossover sits near 16 TBps effective (DESIGN.md validation note).
        assert score.arithmetic_intensity == pytest.approx(113.8, rel=0.01)


class TestMoE:
    def test_touched_experts_limits(self):
        assert expected_touched_experts(16, 4, 1) == pytest.approx(4.0)
        assert expected_touched_experts(16, 4, 100000) == pytest.approx(16.0)

    def test_touched_monotone_in_tokens(self):
        values = [expected_touched_experts(16, 4, n) for n in (1, 4, 16, 64)]
        assert values == sorted(values)

    def test_moe_layer_has_a2a(self):
        shape = LayerShape(n_tokens=64, batch_seqs=8, kv_len=200, tp=8)
        ops = layer_forward_ops(MOE_132B, shape)
        a2a = [
            op for op in ops
            if isinstance(op, CommKernel) and op.pattern.value == "all_to_all"
        ]
        assert len(a2a) == 2  # dispatch + combine

    def test_moe_weight_traffic_below_dense_equivalent(self):
        """At B=8 decode only ~14 of 16 experts stream per layer."""
        shape = LayerShape(n_tokens=8, batch_seqs=8, kv_len=200, tp=8)
        ops = layer_forward_ops(MOE_132B, shape)
        expert_weight_bytes = sum(
            op.weight_bytes
            for op in ops
            if isinstance(op, ComputeKernel) and op.name.startswith("moe_expert")
        )
        all_experts = (
            MOE_132B.moe.n_experts
            * 2 * MOE_132B.hidden * MOE_132B.moe.expert_ffn * 2.0 / shape.tp
        )
        assert expert_weight_bytes < all_experts
        assert expert_weight_bytes > 0.5 * all_experts


class TestHeadOps:
    def test_lm_head_includes_vocab_gemm(self):
        ops = lm_head_ops(GPT3_76B, 64, tp=8)
        gemms = [op for op in ops if isinstance(op, ComputeKernel) and op.is_gemm]
        assert gemms[0].flops == pytest.approx(
            2 * 64 * (GPT3_76B.vocab_size / 8) * GPT3_76B.hidden
        )
