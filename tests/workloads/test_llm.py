"""Model-zoo tests: parameter counts and KV-cache sizes match the paper."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.workloads.llm import (
    GPT3_175B,
    GPT3_18B,
    GPT3_76B,
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA2_7B,
    LLAMA_405B,
    LLAMA_70B,
    MODEL_ZOO,
    MOE_132B,
    LLMConfig,
    MoESpec,
)


class TestParameterCounts:
    @pytest.mark.parametrize(
        "config, expected_b",
        [
            (GPT3_18B, 18.4),
            (GPT3_76B, 76.1),
            (GPT3_175B, 175.0),
            (LLAMA_405B, 405.0),
            (LLAMA_70B, 70.0),
            (LLAMA2_7B, 7.0),
            (LLAMA2_13B, 13.0),
        ],
    )
    def test_name_matches_size(self, config, expected_b):
        assert config.n_params / 1e9 == pytest.approx(expected_b, rel=0.12)

    def test_moe_total_and_active(self):
        # Paper: 132B total / 38B active, 16 experts, 4 active.
        assert MOE_132B.n_params / 1e9 == pytest.approx(132, rel=0.03)
        assert MOE_132B.active_params / 1e9 == pytest.approx(38, rel=0.03)
        assert MOE_132B.moe.n_experts == 16
        assert MOE_132B.moe.active_experts == 4

    def test_dense_active_equals_total(self):
        assert GPT3_76B.active_params == GPT3_76B.n_params

    def test_megatron_dimensions(self):
        assert (GPT3_76B.n_layers, GPT3_76B.hidden, GPT3_76B.n_heads) == (60, 10240, 80)
        assert (GPT3_175B.n_layers, GPT3_175B.hidden) == (96, 12288)


class TestKVCache:
    @pytest.mark.parametrize(
        "config, expected_gb",
        [(LLAMA2_7B, 2.0), (LLAMA2_13B, 3.0), (LLAMA2_70B, 10.0)],
    )
    def test_sec6_kv_sizes(self, config, expected_gb):
        # Sec. VI: "llama2-7B: 2 GB, llama2-13B: 3 GB and llama2-70B: 10 GB".
        kv = config.kv_cache_bytes(batch=1)
        assert kv / 1e9 == pytest.approx(expected_gb, rel=0.15)

    def test_llama405b_batch128_near_5tb(self):
        # Fig. 8b: the B=128 bar approaches the 64-GPU 5 TB capacity.
        kv = LLAMA_405B.kv_cache_bytes(batch=128)
        assert 4.0e12 <= kv <= 4.7e12

    def test_kv_linear_in_batch(self):
        assert LLAMA_405B.kv_cache_bytes(8) == pytest.approx(
            2 * LLAMA_405B.kv_cache_bytes(4)
        )

    def test_kv_traffic_vs_allocation(self):
        alloc = LLAMA_405B.kv_cache_bytes(1)  # at the context window
        actual = LLAMA_405B.kv_cache_bytes(1, seq_len=400)  # at I/O 200/200
        assert actual < alloc
        assert actual == pytest.approx(alloc * 400 / 4096)


class TestConfigValidation:
    def test_heads_must_divide_hidden(self):
        with pytest.raises(ConfigError):
            LLMConfig(
                name="bad", n_layers=2, hidden=100, n_heads=3, kv_heads=3,
                ffn_hidden=400, vocab_size=1000, max_seq_len=128,
            )

    def test_kv_heads_must_divide_heads(self):
        with pytest.raises(ConfigError):
            LLMConfig(
                name="bad", n_layers=2, hidden=128, n_heads=8, kv_heads=3,
                ffn_hidden=512, vocab_size=1000, max_seq_len=128,
            )

    def test_moe_active_bounded(self):
        with pytest.raises(ConfigError):
            MoESpec(n_experts=4, active_experts=8, expert_ffn=128)

    def test_ffn_multiplier_limited(self):
        with pytest.raises(ConfigError):
            LLMConfig(
                name="bad", n_layers=2, hidden=128, n_heads=8, kv_heads=8,
                ffn_hidden=512, vocab_size=1000, max_seq_len=128,
                ffn_multiplier=4,
            )


class TestZooAndHelpers:
    def test_zoo_complete(self):
        assert len(MODEL_ZOO) == 9
        assert "GPT3-76.1B" in MODEL_ZOO
        assert "MoE-132B/38B" in MODEL_ZOO

    def test_flops_per_token_exceeds_2p(self):
        # 2·P dense term plus attention context term.
        assert GPT3_76B.flops_per_token() > 2 * GPT3_76B.n_params

    def test_with_layers(self):
        half = GPT3_76B.with_layers(30)
        assert half.n_layers == 30
        assert half.n_params < GPT3_76B.n_params

    def test_weight_bytes(self):
        assert LLAMA_405B.weight_bytes(2.0) == pytest.approx(2 * LLAMA_405B.n_params)

    def test_head_dims(self):
        assert GPT3_76B.head_dim == 128
        assert GPT3_76B.kv_dim == GPT3_76B.hidden  # MHA
