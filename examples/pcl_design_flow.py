#!/usr/bin/env python3
"""Run the paper's design database through the Starling-like EDA flow.

Reproduces the logic-layer story of Fig. 1: every design is synthesized into
the PCL standard-cell library, converted to dual rail, legalized with
splitters, phase-balanced, placed — and then *functionally verified* by
simulating the final netlist against reference arithmetic.

The summary table is the same artifact the registered `pcl-flow` scenario
renders (`python -m repro run pcl-flow`); here the flow runs once and the
resulting netlists feed both the table and the verification.

The headline design is the bf16 MAC: its datapath lands near the paper's
"~8k JJs" (Sec. III), which in turn sizes the SPU compute die.

Run:  python examples/pcl_design_flow.py
"""

import random

from repro.analysis.tables import PCL_FLOW_HEADERS, pcl_flow_table, render_columns
from repro.eda import designs, run_flow
from repro.pcl.simulate import simulate_bus


def verify_adder(report) -> str:
    """Check the 8-bit adder on random vectors through the final netlist."""
    rng = random.Random(1)
    for _ in range(20):
        a, b = rng.randrange(256), rng.randrange(256)
        out = simulate_bus(report.netlist, {"a": a, "b": b}, {"a": 8, "b": 8})
        assert out["sum"] == a + b, (a, b, out)
    return "sum == a + b on 20 random vectors"


def verify_multiplier(report) -> str:
    """Check the 8-bit Wallace multiplier on random vectors."""
    rng = random.Random(2)
    for _ in range(20):
        a, b = rng.randrange(256), rng.randrange(256)
        out = simulate_bus(report.netlist, {"a": a, "b": b}, {"a": 8, "b": 8})
        assert out["product"] == a * b, (a, b, out)
    return "product == a * b on 20 random vectors"


def verify_mac(report) -> str:
    """Check the carry-save bf16 MAC contract on random vectors."""
    widths = {
        "man_a": 8, "man_b": 8, "exp_a": 8, "exp_b": 8,
        "sign_a": 1, "sign_b": 1, "acc_s": 32, "acc_c": 32,
    }
    rng = random.Random(3)
    for _ in range(10):
        vals = {k: rng.randrange(1 << w) for k, w in widths.items()}
        out = simulate_bus(report.netlist, vals, widths)
        exp = vals["exp_a"] + vals["exp_b"]
        want = (
            vals["acc_s"] + vals["acc_c"]
            + ((vals["man_a"] * vals["man_b"]) << (exp & 0xF))
        ) % (1 << 32)
        got = (out["out_s"] + out["out_c"]) % (1 << 32)
        assert got == want, (vals, got, want)
    return "out_s + out_c == acc + (ma*mb << exp[3:0]) on 10 random vectors"


def main() -> None:
    reports = {
        name: run_flow(generator())
        for name, generator in designs.DESIGN_DATABASE.items()
    }
    print(render_columns(pcl_flow_table(reports), PCL_FLOW_HEADERS))

    print("\nFunctional verification of the legalized netlists:")
    print(f"  adder8     : {verify_adder(reports['adder8'])}")
    print(f"  multiplier8: {verify_multiplier(reports['multiplier8'])}")
    print(f"  mac_bf16   : {verify_mac(reports['mac_bf16'])}")

    mac = reports["mac_bf16"]
    print(
        f"\nbf16 MAC datapath: {mac.datapath_jj} JJ "
        f"(paper: ~8k JJ) -> sizes the 2.45 PFLOP/s compute die"
    )


if __name__ == "__main__":
    main()
