#!/usr/bin/env python3
"""Inference study: bandwidth/latency/batch sensitivity + model speed-ups
(Figs. 7 & 8) and the Sec. VI L2 KV-cache analysis.

Run:  python examples/llm_inference_study.py
"""

from repro.analysis.figures import (
    fig7_inference,
    fig8_inference_speedup,
    l2_kv_cache_study,
)


def main() -> None:
    print("=== Fig. 7: Llama-405B inference, B=8, I/O 200/200, 64 SPUs ===")
    fig7 = fig7_inference()
    print(f"{'BW/SPU':>8s} {'latency s':>10s}")
    for bw, lat in zip(fig7.bandwidths, fig7.latencies):
        print(f"{bw:6.1f}TB {lat:10.3f}")
    print(
        f"0.5 -> {fig7.bandwidths[-1]:.0f} TBps improves latency "
        f"{fig7.speedup_low_to_high:.1f}x (paper: ~17x), saturating past "
        "~8 TBps at the DRAM-latency-bound limit."
    )

    print("\nInset (a): DRAM latency sweep at 16 TBps")
    for lat_ns, pf in zip(fig7.dram_latencies_ns, fig7.latency_sweep_pflops_per_spu):
        print(f"  {lat_ns:5.0f} ns -> {pf:.3f} PFLOP/s/SPU")

    print("\nInset (b): batch sweep at 16 TBps (GPU reference: "
          f"{fig7.gpu_latency:.2f} s at B=8)")
    for b, lat, pf in zip(fig7.batches, fig7.batch_latencies, fig7.batch_pflops_per_spu):
        print(f"  B={b:4d}: latency {lat:6.3f} s, {pf:.3f} PFLOP/s/SPU")

    print("\n=== Fig. 8a: single-blade inference speed-up vs 64 H100s (B=8) ===")
    fig8 = fig8_inference_speedup()
    for name, speedup in zip(fig8.model_names, fig8.model_speedups):
        print(f"  {name:14s} {speedup:5.1f}x   (paper: 8.9-10.6x band)")

    print("\n=== Fig. 8b: Llama-405B speed-up & KV cache vs batch ===")
    cap = fig8.gpu_memory_capacity
    print(f"  64-GPU memory capacity: {cap / 1e12:.2f} TB")
    for b, speedup, kv in zip(fig8.batches, fig8.batch_speedups, fig8.kv_cache_bytes):
        print(
            f"  B={b:4d}: speed-up {speedup:5.1f}x, KV cache "
            f"{kv / 1e12:5.2f} TB ({kv / cap * 100:5.1f}% of GPU capacity)"
        )

    print("\n=== Sec. VI: fitting the KV cache in the blade L2 (~4.19 GB) ===")
    study = l2_kv_cache_study()
    for entry in study.entries:
        verdict = "fits" if entry.fits_l2 else "does NOT fit"
        print(
            f"  {entry.model_name:11s} KV {entry.kv_cache_bytes / 1e9:5.1f} GB "
            f"{verdict}; K/V GEMV speed-up "
            f"{entry.kv_gemm_speedup_with_overhead:.1f}x-"
            f"{entry.kv_gemm_speedup:.1f}x (paper estimate: 2-4x, "
            "depending on kernel-launch overhead)"
        )


if __name__ == "__main__":
    main()
