#!/usr/bin/env python3
"""Inference study: bandwidth/latency/batch sensitivity + model speed-ups
(Figs. 7 & 8) and the Sec. VI L2 KV-cache analysis.

The figure data comes from the registered scenarios (`fig7-bandwidth`,
`fig7-dram-latency`, `fig7-batch`, `fig7-gpu`, `fig8-models`, `fig8-batch`)
— the same specs the `python -m repro` CLI runs — while the L2 study keeps
its kernel-level analysis from `repro.analysis.figures`.

Run:  python examples/llm_inference_study.py [--workers N]
"""

import argparse

from repro import scenarios
from repro.analysis.figures import l2_kv_cache_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="fan scenario grids out over N worker processes")
    workers = parser.parse_args().workers

    print("=== Fig. 7: Llama-405B inference, B=8, I/O 200/200, 64 SPUs ===")
    bw = scenarios.get("fig7-bandwidth").run(workers=workers)
    bandwidths = bw.axis("system.dram_bandwidth_tbps")
    latencies = bw.series("latency")
    print(f"{'BW/SPU':>8s} {'latency s':>10s}")
    for bandwidth, latency in zip(bandwidths, latencies):
        print(f"{bandwidth:6.1f}TB {latency:10.3f}")
    print(
        f"0.5 -> {bandwidths[-1]:.0f} TBps improves latency "
        f"{latencies[0] / latencies[-1]:.1f}x (paper: ~17x), saturating past "
        "~8 TBps at the DRAM-latency-bound limit."
    )

    print("\nInset (a): DRAM latency sweep at 16 TBps")
    lat = scenarios.get("fig7-dram-latency").run(workers=workers)
    for lat_ns, pf in zip(
        lat.axis("system.dram_latency_ns"), lat.series("achieved_pflops_per_pu")
    ):
        print(f"  {lat_ns:5.0f} ns -> {pf:.3f} PFLOP/s/SPU")

    gpu_ref = scenarios.get("fig7-gpu").run()
    print("\nInset (b): batch sweep at 16 TBps (GPU reference: "
          f"{gpu_ref.series('latency')[0]:.2f} s at B=8)")
    batch_sweep = scenarios.get("fig7-batch").run(workers=workers)
    for b, latency, pf in zip(
        batch_sweep.axis("workload.batch"),
        batch_sweep.series("latency"),
        batch_sweep.series("achieved_pflops_per_pu"),
    ):
        print(f"  B={b:4d}: latency {latency:6.3f} s, {pf:.3f} PFLOP/s/SPU")

    print("\n=== Fig. 8a: single-blade inference speed-up vs 64 H100s (B=8) ===")
    fig8a = scenarios.get("fig8-models").run(workers=workers)
    for name, speedup in zip(
        fig8a.axis("workload.model"), fig8a.series("speedup")
    ):
        print(f"  {name:14s} {speedup:5.1f}x   (paper: 8.9-10.6x band)")

    print("\n=== Fig. 8b: Llama-405B speed-up & KV cache vs batch ===")
    fig8b = scenarios.get("fig8-batch").run(workers=workers)
    cap = scenarios.get("fig8-batch").ref_system.build().total_memory_capacity
    print(f"  64-GPU memory capacity: {cap / 1e12:.2f} TB")
    for b, speedup, kv in zip(
        fig8b.axis("workload.batch"),
        fig8b.series("speedup"),
        fig8b.series("kv_cache_bytes"),
    ):
        print(
            f"  B={b:4d}: speed-up {speedup:5.1f}x, KV cache "
            f"{kv / 1e12:5.2f} TB ({kv / cap * 100:5.1f}% of GPU capacity)"
        )

    print("\n=== Sec. VI: fitting the KV cache in the blade L2 (~4.19 GB) ===")
    study = l2_kv_cache_study()
    for entry in study.entries:
        verdict = "fits" if entry.fits_l2 else "does NOT fit"
        print(
            f"  {entry.model_name:11s} KV {entry.kv_cache_bytes / 1e9:5.1f} GB "
            f"{verdict}; K/V GEMV speed-up "
            f"{entry.kv_gemm_speedup_with_overhead:.1f}x-"
            f"{entry.kv_gemm_speedup:.1f}x (paper estimate: 2-4x, "
            "depending on kernel-launch overhead)"
        )


if __name__ == "__main__":
    main()
