#!/usr/bin/env python3
"""Quickstart: build the SCD blade, project LLM training and inference.

Walks the library's main path in ~40 lines:

1. assemble the paper's baseline blade (Fig. 3c) bottom-up,
2. map GPT3-76B training onto it (TP=8 / PP=8 / DP=1),
3. evaluate with the Optimus performance model,
4. compare against an equal number of H100 GPUs.

Run:  python examples/quickstart.py
"""

from repro.arch import build_blade, build_gpu_system
from repro.core import Optimus
from repro.parallel import ParallelConfig, map_inference, map_training
from repro.workloads import GPT3_76B, LLAMA_405B
from repro.units import TBPS


def main() -> None:
    # 1. The SCD blade: 8x8 SPUs, 2 TB cryo-DRAM, 30 TBps datalink.
    blade = build_blade()
    print("=== SCD blade (Fig. 3c baseline) ===")
    for name, value in blade.spec_rows():
        print(f"  {name:40s} {value}")

    # The paper's headline experiments run at 16 TBps effective per SPU.
    scd = blade.system().with_dram_bandwidth(16 * TBPS)
    gpu = build_gpu_system(scd.n_accelerators)

    # 2-3. Training projection: GPT3-76B, batch 64, bf16.
    parallel = ParallelConfig(tensor_parallel=8, pipeline_parallel=8)
    scd_report = Optimus(scd).evaluate_training(
        map_training(GPT3_76B, scd, parallel, batch=64)
    )
    gpu_report = Optimus(gpu).evaluate_training(
        map_training(GPT3_76B, gpu, parallel, batch=64)
    )

    print("\n=== GPT3-76B training, batch 64 ===")
    for label, report in (("SCD blade", scd_report), ("64x H100", gpu_report)):
        parts = report.breakdown()
        print(
            f"  {label:10s} {report.time_per_batch * 1e3:8.1f} ms/batch "
            f"(compute {parts['compute'] * 1e3:.0f} + comm "
            f"{parts['communication'] * 1e3:.0f} + others "
            f"{parts['others'] * 1e3:.0f}) -> "
            f"{report.achieved_flops_per_pu / 1e15:.2f} PFLOP/s per unit"
        )
    print(
        f"  SCD speed-up: "
        f"{gpu_report.time_per_batch / scd_report.time_per_batch:.2f}x "
        f"(paper band: 3.5-4.4x)"
    )

    # 4. Inference projection: Llama-405B, batch 8, 200/200 tokens.
    scd_inf = Optimus(scd).evaluate_inference(
        map_inference(LLAMA_405B, scd, batch=8)
    )
    gpu_inf = Optimus(gpu).evaluate_inference(
        map_inference(LLAMA_405B, gpu, batch=8)
    )
    print("\n=== Llama-405B inference, batch 8, I/O 200/200 ===")
    print(f"  SCD blade  {scd_inf.latency:6.3f} s  ({scd_inf.tokens_per_second:,.0f} tok/s)")
    print(f"  64x H100   {gpu_inf.latency:6.3f} s  ({gpu_inf.tokens_per_second:,.0f} tok/s)")
    print(
        f"  SCD speed-up: {gpu_inf.latency / scd_inf.latency:.1f}x "
        f"(paper band: 9-11x)"
    )


if __name__ == "__main__":
    main()
