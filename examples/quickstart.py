#!/usr/bin/env python3
"""Quickstart: build the SCD blade, project LLM training and inference.

Walks the library's main path entirely through the declarative scenario API
(`repro.scenarios`):

1. render the paper's baseline blade spec (Fig. 3c) from the registry,
2. run the registered GPT3-76B training comparison (SCD blade vs 64 H100s),
3. run the registered Llama-405B inference comparison.

Every step is a named scenario — the same specs `python -m repro run
quickstart-training` executes — so the whole experiment is serializable
data: `scenarios.get("quickstart-training").to_json()` is the entire setup.

Run:  python examples/quickstart.py
"""

from repro import scenarios


def main() -> None:
    # 1. The SCD blade: 8x8 SPUs, 2 TB cryo-DRAM, 30 TBps datalink.
    print(scenarios.get("fig3c-blade-spec").run().render())

    # 2-3. Training projection: GPT3-76B, batch 64, bf16, TP=8/PP=8.
    training = scenarios.get("quickstart-training").run()
    outcome = training.outcomes()[0]
    print("\n=== GPT3-76B training, batch 64 ===")
    for label, report in (("SCD blade", outcome.report), ("64x H100", outcome.ref_report)):
        parts = report.breakdown()
        print(
            f"  {label:10s} {report.time_per_batch * 1e3:8.1f} ms/batch "
            f"(compute {parts['compute'] * 1e3:.0f} + comm "
            f"{parts['communication'] * 1e3:.0f} + others "
            f"{parts['others'] * 1e3:.0f}) -> "
            f"{report.achieved_flops_per_pu / 1e15:.2f} PFLOP/s per unit"
        )
    print(
        f"  SCD speed-up: {training.series('speedup')[0]:.2f}x "
        f"(paper band: 3.5-4.4x)"
    )

    # 4. Inference projection: Llama-405B, batch 8, 200/200 tokens.
    inference = scenarios.get("quickstart-inference").run()
    scd_inf = inference.outcomes()[0].report
    gpu_inf = inference.outcomes()[0].ref_report
    print("\n=== Llama-405B inference, batch 8, I/O 200/200 ===")
    print(f"  SCD blade  {scd_inf.latency:6.3f} s  ({scd_inf.tokens_per_second:,.0f} tok/s)")
    print(f"  64x H100   {gpu_inf.latency:6.3f} s  ({gpu_inf.tokens_per_second:,.0f} tok/s)")
    print(
        f"  SCD speed-up: {inference.series('speedup')[0]:.1f}x "
        f"(paper band: 9-11x)"
    )


if __name__ == "__main__":
    main()
