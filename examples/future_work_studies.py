#!/usr/bin/env python3
"""The paper's three future-work directions, quantified with this library.

1. Power breakdown (Sec. III: "a more detailed look into the power
   breakdown ... will be pursued as future work"),
2. multi-blade scaling via the registered `multi-blade-scaling` scenario
   (Sec. VII: "we expect the performance to scale with the number of
   blades"),
3. LLM inference out of a huge JSRAM pool (Sec. VII: "exploiting its
   massive bandwidth and negligible latency").

Run:  python examples/future_work_studies.py
"""

from repro import scenarios
from repro.analysis.figures import jsram_main_memory_study
from repro.arch import build_blade, build_gpu_system
from repro.core import Optimus
from repro.parallel import ParallelConfig, map_training
from repro.power import CoolingModel, gpu_power_model, scd_power_model
from repro.units import TBPS
from repro.workloads import GPT3_175B


def power_study() -> None:
    print("=== 1. Power breakdown: GPT3-175B training, per batch ===")
    blade = build_blade().system().with_dram_bandwidth(16 * TBPS)
    gpu = build_gpu_system(64)
    parallel = ParallelConfig(8, 8, 1)
    scd_report = Optimus(blade).evaluate_training(
        map_training(GPT3_175B, blade, parallel, 64)
    )
    gpu_report = Optimus(gpu).evaluate_training(
        map_training(GPT3_175B, gpu, parallel, 64)
    )
    scd_pm, gpu_pm = scd_power_model(blade), gpu_power_model(gpu)
    scd_e = scd_pm.training_energy(
        scd_report, *scd_pm.estimate_training_traffic(scd_report)
    )
    gpu_e = gpu_pm.training_energy(
        gpu_report, *gpu_pm.estimate_training_traffic(gpu_report)
    )
    print(f"{'bucket':10s} {'SCD (J)':>12s} {'GPU (J)':>12s}")
    for bucket in ("compute", "memory", "network", "overhead"):
        print(
            f"{bucket:10s} {getattr(scd_e, bucket):12.1f} "
            f"{getattr(gpu_e, bucket):12.1f}"
        )
    print(
        f"device     {scd_e.total_device:12.1f} {gpu_e.total_device:12.1f}"
        f"   -> {gpu_e.total_device / scd_e.total_device:.0f}x"
    )
    print(
        f"wall-plug  {scd_e.total_wall:12.1f} {gpu_e.total_wall:12.1f}"
        f"   -> {gpu_e.total_wall / scd_e.total_wall:.1f}x "
        "(after 500 W/W @4K, 12 W/W @77K cooling)"
    )
    harsh = scd_power_model(blade, CoolingModel(w_per_w_4k=1000))
    harsh_e = harsh.training_energy(
        scd_report, *harsh.estimate_training_traffic(scd_report)
    )
    print(
        f"pessimistic cooling (1000 W/W): wall gain still "
        f"{gpu_e.total_wall / harsh_e.total_wall:.1f}x"
    )


def multi_blade_study() -> None:
    print("\n=== 2. Multi-blade scaling: GPT3-76B training (DP across blades) ===")
    result = scenarios.get("multi-blade-scaling").run()
    print(f"{'blades':>7s} {'batch':>6s} {'s/batch':>9s} {'tokens/s':>11s}")
    for n_blades, batch, time_per_batch, tokens_per_second in zip(
        result.axis("system.n_blades"),
        result.axis("workload.batch"),
        result.series("time_per_batch"),
        result.series("tokens_per_second"),
    ):
        print(
            f"{n_blades:7d} {batch:6d} "
            f"{time_per_batch:9.3f} {tokens_per_second:11,.0f}"
        )
    print("Near-linear throughput scaling: each blade carries its own "
          "cryo-DRAM pool\nand only gradients cross the optical inter-blade links.")


def jsram_study() -> None:
    print("\n=== 3. Inference from a huge JSRAM pool (weights + KV resident) ===")
    study = jsram_main_memory_study()
    print(f"{'model':12s} {'JSRAM':>8s} {'footprint':>10s} {'fits':>5s} {'speed-up':>9s}")
    for entry in study.entries:
        print(
            f"{entry.model_name:12s} {entry.jsram_capacity_bytes / 1e9:6.1f}GB "
            f"{entry.footprint_bytes / 1e9:8.1f}GB {str(entry.fits):>5s} "
            f"{entry.speedup:8.2f}x"
        )
    print("Once weights + KV fit the JSRAM pool, decode streams at torus "
          "bandwidth with\nnanosecond latency — the paper's 'new ways of "
          "mapping and memory management'.")


def main() -> None:
    power_study()
    multi_blade_study()
    jsram_study()


if __name__ == "__main__":
    main()
