#!/usr/bin/env python3
"""Design-space exploration beyond the paper's baseline.

Uses the library as a downstream architect would:

* rank parallelization strategies for GPT3-76B on the blade via the
  registered `dse` scenario (the paper's "we assess the most optimal
  mapping"; strategy candidates fan out through the sweep driver),
* scale the blade (4x4 ... 10x10 SPUs; the paper caps at ~100 per blade),
* trade datalink wire count against achieved training throughput.

The custom grid studies run through the declarative ``repro.analysis.sweep``
driver; pass ``--workers N`` to fan everything out over worker processes.

Run:  python examples/design_space_exploration.py [--workers N]
"""

import argparse

from repro import scenarios
from repro.analysis.figures import TRAINING_PARALLEL
from repro.analysis.sweep import SweepGrid, run_sweep
from repro.arch import build_blade
from repro.core import Optimus, search_strategies
from repro.core.optimizer import StrategyResult
from repro.parallel import map_training
from repro.units import TBPS
from repro.workloads import GPT3_76B


def strategy_search(workers: int | None = None) -> None:
    """Rank (TP, PP, DP) decompositions for GPT3-76B on 64 SPUs."""
    result = scenarios.get("dse").run(workers=workers)
    print("=== Strategy search: GPT3-76B, B=64, 64 SPUs @16 TBps ===")
    print(f"{'TP':>3s} {'PP':>3s} {'DP':>3s} {'s/batch':>9s} {'PF/SPU':>7s}")
    for entry in result.strategies[:8]:
        p = entry.parallel
        print(
            f"{p.tensor_parallel:3d} {p.pipeline_parallel:3d} "
            f"{p.data_parallel:3d} {entry.time_per_batch:9.3f} "
            f"{entry.report.achieved_flops_per_pu / 1e15:7.2f}"
        )
    best = result.strategies[0].parallel
    print(
        f"best: TP={best.tensor_parallel} PP={best.pipeline_parallel} "
        f"DP={best.data_parallel} (paper's fixed setup is TP=8/PP=8/DP=1)"
    )


def _blade_scaling_point(side: int, batch: int) -> tuple[float, int, StrategyResult]:
    """One blade-scaling grid point: best strategy on a side×side blade."""
    blade = build_blade(nx=side, ny=side)
    system = blade.system().with_dram_bandwidth(16 * TBPS)
    # Let the mapper pick the best decomposition for this SPU count.
    best = search_strategies(GPT3_76B, system, batch=batch, max_candidates=12)[0]
    return blade.dram_bandwidth_per_spu, system.n_accelerators, best


def blade_scaling(workers: int | None = None) -> None:
    """Scale the SPU array; DRAM and network BW scale with it (Sec. IV-C)."""
    print("\n=== Blade scaling: GPT3-76B training, B=128 ===")
    print(
        f"{'array':>7s} {'SPUs':>5s} {'TBps/SPU':>9s} {'TP/PP/DP':>9s} "
        f"{'s/batch':>9s} {'PF/SPU':>7s}"
    )
    sweep = run_sweep(
        _blade_scaling_point,
        SweepGrid.product(side=(4, 8, 10)),
        common={"batch": 128},
        workers=workers,
    )
    for point in sweep.points:
        side = point["side"]
        bw_per_spu, n_spus, best = point.value
        p = best.parallel
        print(
            f"{side}x{side:>4d} {n_spus:5d} "
            f"{bw_per_spu / 1e12:9.2f} "
            f"{p.tensor_parallel:3d}/{p.pipeline_parallel}/{p.data_parallel} "
            f"{best.time_per_batch:9.3f} "
            f"{best.report.achieved_flops_per_pu / 1e15:7.2f}"
        )


def _datalink_scaling_point(factor: float, batch: int) -> tuple[float, float]:
    """One datalink grid point: (bandwidth per SPU, seconds per batch)."""
    base_blade = build_blade()
    scaled = base_blade.datalink.scaled(factor)
    bw_per_spu = min(
        scaled.bidirectional_bandwidth,
        base_blade.dram.internal_bandwidth * factor,
    ) / base_blade.n_spus
    system = base_blade.system().with_dram_bandwidth(bw_per_spu)
    report = Optimus(system).evaluate_training(
        map_training(GPT3_76B, system, TRAINING_PARALLEL, batch=batch)
    )
    return bw_per_spu, report.time_per_batch


def datalink_scaling(workers: int | None = None) -> None:
    """Scale datalink wires: the paper notes the 30 TBps baseline 'can be
    increased or decreased based on the power budget, metal layers, ...'."""
    print("\n=== Datalink scaling: GPT3-76B training, B=128, 8x8 blade ===")
    print(f"{'wires x':>8s} {'TBps/SPU':>9s} {'s/batch':>9s}")
    sweep = run_sweep(
        _datalink_scaling_point,
        SweepGrid.product(factor=(1.0, 4.0, 16.0, 34.0)),
        common={"batch": 128},
        workers=workers,
    )
    for point in sweep.points:
        bw_per_spu, time_per_batch = point.value
        print(f"{point['factor']:8.0f} {bw_per_spu / 1e12:9.2f} {time_per_batch:9.3f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan sweep grids out over N worker processes (default: serial)",
    )
    args = parser.parse_args()
    strategy_search(workers=args.workers)
    blade_scaling(workers=args.workers)
    datalink_scaling(workers=args.workers)


if __name__ == "__main__":
    main()
