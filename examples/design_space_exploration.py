#!/usr/bin/env python3
"""Design-space exploration beyond the paper's baseline.

Uses the library as a downstream architect would:

* search parallelization strategies for GPT3-76B on the blade (the paper's
  "we assess the most optimal mapping"),
* scale the blade (4x4 ... 10x10 SPUs; the paper caps at ~100 per blade),
* trade datalink wire count against achieved training throughput.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis.figures import TRAINING_PARALLEL, scd_system
from repro.arch import build_blade
from repro.core import Optimus, search_strategies
from repro.parallel import map_training
from repro.units import TBPS
from repro.workloads import GPT3_76B


def strategy_search() -> None:
    """Rank (TP, PP, DP) decompositions for GPT3-76B on 64 SPUs."""
    system = scd_system(16 * TBPS)
    results = search_strategies(GPT3_76B, system, batch=64)
    print("=== Strategy search: GPT3-76B, B=64, 64 SPUs @16 TBps ===")
    print(f"{'TP':>3s} {'PP':>3s} {'DP':>3s} {'s/batch':>9s} {'PF/SPU':>7s}")
    for result in results[:8]:
        p = result.parallel
        print(
            f"{p.tensor_parallel:3d} {p.pipeline_parallel:3d} "
            f"{p.data_parallel:3d} {result.time_per_batch:9.3f} "
            f"{result.report.achieved_flops_per_pu / 1e15:7.2f}"
        )
    best = results[0].parallel
    print(
        f"best: TP={best.tensor_parallel} PP={best.pipeline_parallel} "
        f"DP={best.data_parallel} (paper's fixed setup is TP=8/PP=8/DP=1)"
    )


def blade_scaling() -> None:
    """Scale the SPU array; DRAM and network BW scale with it (Sec. IV-C)."""
    print("\n=== Blade scaling: GPT3-76B training, B=128 ===")
    print(
        f"{'array':>7s} {'SPUs':>5s} {'TBps/SPU':>9s} {'TP/PP/DP':>9s} "
        f"{'s/batch':>9s} {'PF/SPU':>7s}"
    )
    for side in (4, 8, 10):
        blade = build_blade(nx=side, ny=side)
        system = blade.system().with_dram_bandwidth(16 * TBPS)
        # Let the mapper pick the best decomposition for this SPU count.
        best = search_strategies(
            GPT3_76B, system, batch=128, max_candidates=12
        )[0]
        p = best.parallel
        print(
            f"{side}x{side:>4d} {system.n_accelerators:5d} "
            f"{blade.dram_bandwidth_per_spu / 1e12:9.2f} "
            f"{p.tensor_parallel:3d}/{p.pipeline_parallel}/{p.data_parallel} "
            f"{best.time_per_batch:9.3f} "
            f"{best.report.achieved_flops_per_pu / 1e15:7.2f}"
        )


def datalink_scaling() -> None:
    """Scale datalink wires: the paper notes the 30 TBps baseline 'can be
    increased or decreased based on the power budget, metal layers, ...'."""
    print("\n=== Datalink scaling: GPT3-76B training, B=128, 8x8 blade ===")
    print(f"{'wires x':>8s} {'TBps/SPU':>9s} {'s/batch':>9s}")
    base_blade = build_blade()
    for factor in (1.0, 4.0, 16.0, 34.0):
        scaled = base_blade.datalink.scaled(factor)
        bw_per_spu = min(
            scaled.bidirectional_bandwidth, base_blade.dram.internal_bandwidth * factor
        ) / base_blade.n_spus
        system = base_blade.system().with_dram_bandwidth(bw_per_spu)
        report = Optimus(system).evaluate_training(
            map_training(GPT3_76B, system, TRAINING_PARALLEL, batch=128)
        )
        print(
            f"{factor:8.0f} {bw_per_spu / 1e12:9.2f} {report.time_per_batch:9.3f}"
        )


def main() -> None:
    strategy_search()
    blade_scaling()
    datalink_scaling()


if __name__ == "__main__":
    main()
