#!/usr/bin/env python3
"""Technology tour: from Josephson junctions to the blade spec.

Walks the bottom-up derivation chain of the paper:

  JJ device -> PCL MAC (~8k JJ) -> 144 mm2 compute die (2.45 PFLOP/s)
  JSRAM cell (8 JJ, 1.86 um2) -> HD die (~6 MB) -> 24 MB L1
  datalink wires -> 30 TBps main-memory bandwidth -> 0.47 TBps/SPU
  bump field -> 73 TBps SPU-to-SPU links

The paper's tables come from the scenario registry (`table1`,
`fig2b-datalink`, `fig3c-blade-spec` — the same artifacts
`python -m repro run table1` prints); the intermediate device/die numbers
are read straight off the technology models.

Run:  python examples/technology_tour.py
"""

from repro import scenarios
from repro.arch import ComputeDie
from repro.interconnect.packaging import chip_to_chip_link, interposer_4k
from repro.memory.jsram import HD_1R1W, JSRAMDie
from repro.tech.device import JosephsonJunction
from repro.units import AJ, PS


def main() -> None:
    print(scenarios.get("table1").run().render())

    jj = JosephsonJunction()
    print("\n=== Device level ===")
    print(f"  JJ switching energy : {jj.switching_energy / AJ:.3f} aJ (sub-attojoule)")
    print(f"  JJ switching delay  : {jj.switching_delay / PS:.2f} ps")
    print(f"  thermal stability   : {jj.thermal_stability_factor:,.0f} x kT")

    die = ComputeDie()
    print("\n=== Compute die (144 mm2) ===")
    print(f"  JJ budget           : {die.jj_budget / 1e6:,.0f} MJJ")
    print(f"  MAC units (~8k JJ)  : {die.mac_count:,}")
    print(f"  peak bf16           : {die.peak_flops / 1e15:.2f} PFLOP/s")
    print(f"  MAC-array power     : {die.power_watts:.2f} W at 4 K")

    jdie = JSRAMDie()
    print("\n=== JSRAM ===")
    print(f"  HD cell             : {HD_1R1W.jj_count} JJ, {HD_1R1W.area / 1e-12:.2f} um2")
    print(f"  HD die capacity     : {jdie.capacity_bytes / 1e6:.1f} MB usable")

    print()
    print(scenarios.get("fig2b-datalink").run().render())

    c2c, interposer = chip_to_chip_link(), interposer_4k()
    print("\n=== Fig. 3c packaging tables ===")
    print(
        f"  chip-to-chip : {c2c.usable_bumps:,} bumps -> "
        f"{c2c.bandwidth / 1e12:.1f} TBps"
    )
    print(
        f"  4K interposer: {interposer.usable_bumps:,} bumps -> "
        f"{interposer.bandwidth / 1e15:.2f} PBps"
    )

    print()
    print(scenarios.get("fig3c-blade-spec").run().render())


if __name__ == "__main__":
    main()
