#!/usr/bin/env python3
"""Training study: bandwidth sensitivity and GPU comparison (Figs. 5 & 6).

Runs the registered `fig5` and `fig6` scenarios (the same specs
`python -m repro run fig5` executes), reads the extracted series off the
results, and renders terminal plots: the cryo-DRAM bandwidth sweep shows the
memory-bound -> compute-bound crossover of the forward GEMMs, the model
comparison the 3.5-4.4x per-batch speed-up over 64 H100s.

Run:  python examples/llm_training_study.py [--workers N]
"""

import argparse

from repro import scenarios


def bar(fraction: float, width: int = 32) -> str:
    """A crude text bar for terminal plots."""
    filled = round(max(0.0, min(1.0, fraction)) * width)
    return "#" * filled + "." * (width - filled)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="fan scenario grids out over N worker processes")
    workers = parser.parse_args().workers

    print("=== Fig. 5: GPT3-76B training, B=128, TP=8/PP=8/DP=1, 64 SPUs ===")
    fig5 = scenarios.get("fig5").run(workers=workers)
    bandwidths = fig5.axis("system.dram_bandwidth_tbps")
    pflops = fig5.series("achieved_pflops_per_pu")
    peak = max(pflops)
    print(f"{'BW/SPU':>8s} {'PFLOP/s/SPU':>12s}  throughput")
    for bw, pf in zip(bandwidths, pflops):
        print(f"{bw:6.1f}TB {pf:12.3f}  {bar(pf / peak)}")

    print("\nInset: forward GEMM time per layer (memory- vs compute-bound)")
    print(f"{'BW/SPU':>8s} {'total ms':>9s} {'mem-bound':>10s} {'comp-bound':>10s}")
    for bw, total, mem, comp in zip(
        bandwidths,
        fig5.series("gemm_time_per_layer"),
        fig5.series("gemm_memory_bound_time"),
        fig5.series("gemm_compute_bound_time"),
    ):
        print(
            f"{bw:6.1f}TB {total * 1e3:9.3f} {mem * 1e3:10.3f} "
            f"{comp * 1e3:10.3f}   mem {bar(mem / total, 20)}"
        )
    print(
        "\nTakeaway: throughput grows with bandwidth and saturates once the "
        "GEMMs turn compute-bound;\nonly softmax/layer-norm style kernels "
        "remain memory-bound at high bandwidth."
    )

    print("\n=== Fig. 6: training time per batch, SPU (16 TBps) vs H100 ===")
    fig6 = scenarios.get("fig6").run(workers=workers)
    print(
        f"{'model':12s} {'unit':5s} {'total s':>8s} {'compute':>8s} "
        f"{'comm':>8s} {'others':>8s} {'PF/unit':>8s}"
    )
    speedups = fig6.series("speedup")
    for model_name, outcome, speedup in zip(
        fig6.axis("workload.model"), fig6.outcomes(), speedups
    ):
        for label, report in (("SPU", outcome.report), ("GPU", outcome.ref_report)):
            parts = report.breakdown()
            print(
                f"{model_name:12s} {label:5s} "
                f"{report.time_per_batch:8.3f} {parts['compute']:8.3f} "
                f"{parts['communication']:8.3f} {parts['others']:8.3f} "
                f"{report.achieved_flops_per_pu / 1e15:8.2f}"
            )
        print(f"{'':12s} speed-up: {speedup:.2f}x")
    print(
        f"\nTakeaway: SCD is {min(speedups):.1f}-"
        f"{max(speedups):.1f}x faster per batch "
        "(paper: 3.5-4.4x), mostly from faster data movement."
    )


if __name__ == "__main__":
    main()
