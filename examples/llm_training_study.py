#!/usr/bin/env python3
"""Training study: bandwidth sensitivity and GPU comparison (Figs. 5 & 6).

Sweeps the cryo-DRAM bandwidth per SPU for GPT3-76B training (Fig. 5),
showing the memory-bound → compute-bound crossover of the forward GEMMs,
then compares the three GPT-3 sizes against 64 H100s (Fig. 6).

Run:  python examples/llm_training_study.py
"""

from repro.analysis.figures import (
    fig5_training_bandwidth_sweep,
    fig6_training_models,
)


def bar(fraction: float, width: int = 32) -> str:
    """A crude text bar for terminal plots."""
    filled = round(max(0.0, min(1.0, fraction)) * width)
    return "#" * filled + "." * (width - filled)


def main() -> None:
    print("=== Fig. 5: GPT3-76B training, B=128, TP=8/PP=8/DP=1, 64 SPUs ===")
    fig5 = fig5_training_bandwidth_sweep()
    peak = max(fig5.achieved_pflops_per_spu)
    print(f"{'BW/SPU':>8s} {'PFLOP/s/SPU':>12s}  throughput")
    for bw, pf in zip(fig5.bandwidths, fig5.achieved_pflops_per_spu):
        print(f"{bw:6.1f}TB {pf:12.3f}  {bar(pf / peak)}")

    print("\nInset: forward GEMM time per layer (memory- vs compute-bound)")
    print(f"{'BW/SPU':>8s} {'total ms':>9s} {'mem-bound':>10s} {'comp-bound':>10s}")
    for bw, total, mem, comp in zip(
        fig5.bandwidths,
        fig5.gemm_time_per_layer,
        fig5.gemm_memory_bound_time,
        fig5.gemm_compute_bound_time,
    ):
        print(
            f"{bw:6.1f}TB {total * 1e3:9.3f} {mem * 1e3:10.3f} "
            f"{comp * 1e3:10.3f}   mem {bar(mem / total, 20)}"
        )
    print(
        "\nTakeaway: throughput grows with bandwidth and saturates once the "
        "GEMMs turn compute-bound;\nonly softmax/layer-norm style kernels "
        "remain memory-bound at high bandwidth."
    )

    print("\n=== Fig. 6: training time per batch, SPU (16 TBps) vs H100 ===")
    fig6 = fig6_training_models()
    print(
        f"{'model':12s} {'unit':5s} {'total s':>8s} {'compute':>8s} "
        f"{'comm':>8s} {'others':>8s} {'PF/unit':>8s}"
    )
    for entry in fig6.entries:
        for label, report in (("SPU", entry.spu), ("GPU", entry.gpu)):
            parts = report.breakdown()
            print(
                f"{entry.model_name:12s} {label:5s} "
                f"{report.time_per_batch:8.3f} {parts['compute']:8.3f} "
                f"{parts['communication']:8.3f} {parts['others']:8.3f} "
                f"{report.achieved_flops_per_pu / 1e15:8.2f}"
            )
        print(f"{'':12s} speed-up: {entry.speedup:.2f}x")
    print(
        f"\nTakeaway: SCD is {min(fig6.speedups):.1f}-"
        f"{max(fig6.speedups):.1f}x faster per batch "
        "(paper: 3.5-4.4x), mostly from faster data movement."
    )


if __name__ == "__main__":
    main()
