"""Experiment F2 — the 4K↔77K main-memory datalink (Fig. 2b).

Regenerates the baseline wire tables and the headline 30 TBps bidirectional
bandwidth (20 TBps downlink towards 4 K, 10 TBps uplink towards 77 K).
"""

from __future__ import annotations

from repro.analysis.tables import datalink_table
from repro.interconnect.datalink import baseline_datalink


def test_datalink_baseline(run_once):
    spec = run_once(baseline_datalink)
    print()
    for row in datalink_table(spec):
        print(f"  {row[0]:16s} {row[1]:36s} {row[2]}")
    assert spec.downlink.n_wires == 20_000
    assert spec.uplink.n_wires == 10_000
    assert abs(spec.downlink_bandwidth - 20e12) < 1e9
    assert abs(spec.uplink_bandwidth - 10e12) < 1e9
    assert abs(spec.bidirectional_bandwidth - 30e12) < 1e9


def test_datalink_scaling(run_once):
    def scaled_bandwidths():
        base = baseline_datalink()
        return [
            base.scaled(factor).bidirectional_bandwidth
            for factor in (0.5, 1.0, 2.0, 4.0)
        ]

    values = run_once(scaled_bandwidths)
    # The paper: bandwidth "can be increased or decreased based on the power
    # budget, available metal layers, channel reach, ..."
    assert values == sorted(values)
    assert abs(values[1] - 30e12) < 1e9
    assert abs(values[3] - 120e12) < 1e9
