"""Shared fixtures and collection hooks for the benchmark suite.

Every figure benchmark regenerates one paper artifact (table or figure),
asserts the paper's qualitative claims on the result, and reports the
regenerated rows through ``--benchmark-only -s``.

``benchmarks/perf/`` holds the *performance-trajectory* benchmarks: fast,
assertion-bearing speed checks that are wired into the default pytest run
via :func:`pytest_collect_file` below (the slower per-figure benchmarks
remain opt-in: ``pytest benchmarks/bench_<name>.py``).
"""

from __future__ import annotations

import pytest


def pytest_collect_file(file_path, parent):
    """Collect ``benchmarks/perf/bench_*.py`` in the default test run."""
    if (
        file_path.suffix == ".py"
        and file_path.name.startswith("bench_")
        and file_path.parent.name == "perf"
    ):
        return pytest.Module.from_parent(parent, path=file_path)


@pytest.fixture
def run_once(benchmark):
    """Run the benched callable exactly once (figure sweeps are seconds-long;
    statistical repetition adds nothing to an analytical model)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
