"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper artifact (table or figure), asserts
the paper's qualitative claims on the result, and reports the regenerated
rows through ``--benchmark-only -s``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the benched callable exactly once (figure sweeps are seconds-long;
    statistical repetition adds nothing to an analytical model)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
