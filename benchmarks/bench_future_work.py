"""Experiments beyond the paper: its three declared future-work directions.

1. **Power breakdown** — device-level and wall-plug energy per training
   batch, SCD vs GPU, including the 4 K/77 K cooling tax.
2. **Multi-blade scaling** — "we expect the performance to scale with the
   number of blades".
3. **JSRAM as main memory** — "the impact of huge JSRAM capacity on LLM
   inference exploiting its massive bandwidth and negligible latency".
"""

from __future__ import annotations

from repro.analysis.figures import jsram_main_memory_study
from repro.arch import build_blade, build_gpu_system
from repro.arch.multi_blade import build_multi_blade
from repro.core.model import Optimus
from repro.parallel.mapper import map_training
from repro.parallel.strategy import ParallelConfig
from repro.power import gpu_power_model, scd_power_model
from repro.units import GB, TBPS
from repro.workloads.llm import GPT3_175B, GPT3_76B


def test_power_breakdown(run_once):
    def measure():
        blade = build_blade().system().with_dram_bandwidth(16 * TBPS)
        gpu = build_gpu_system(64)
        parallel = ParallelConfig(8, 8, 1)
        scd_report = Optimus(blade).evaluate_training(
            map_training(GPT3_175B, blade, parallel, 64)
        )
        gpu_report = Optimus(gpu).evaluate_training(
            map_training(GPT3_175B, gpu, parallel, 64)
        )
        scd_pm, gpu_pm = scd_power_model(blade), gpu_power_model(gpu)
        scd_e = scd_pm.training_energy(
            scd_report, *scd_pm.estimate_training_traffic(scd_report)
        )
        gpu_e = gpu_pm.training_energy(
            gpu_report, *gpu_pm.estimate_training_traffic(gpu_report)
        )
        return scd_e, gpu_e

    scd_e, gpu_e = run_once(measure)
    print(
        f"\n  GPT3-175B energy/batch: SCD {scd_e.total_device / 1e3:.2f} kJ device"
        f" / {scd_e.total_wall / 1e3:.1f} kJ wall | GPU "
        f"{gpu_e.total_device / 1e3:.1f} kJ device / {gpu_e.total_wall / 1e3:.1f} kJ wall"
    )
    device_gain = gpu_e.total_device / scd_e.total_device
    wall_gain = gpu_e.total_wall / scd_e.total_wall
    print(f"  device-level gain {device_gain:.0f}x, wall-plug gain {wall_gain:.1f}x")
    # Intro claims: ~100x lower on-chip power; a real (but much smaller)
    # advantage must survive the cryocooler tax.
    assert 30 <= device_gain <= 300
    assert wall_gain > 1.5


def test_multi_blade_scaling(run_once):
    def measure():
        rows = []
        for n_blades in (1, 2, 4):
            system = build_multi_blade(n_blades).system().with_dram_bandwidth(16 * TBPS)
            parallel = ParallelConfig(8, 8, n_blades)
            report = Optimus(system).evaluate_training(
                map_training(GPT3_76B, system, parallel, 64 * n_blades)
            )
            rows.append((n_blades, report.tokens_per_second))
        return rows

    rows = run_once(measure)
    print()
    for n_blades, tps in rows:
        print(f"  {n_blades} blade(s): {tps:,.0f} tokens/s")
    # Near-linear data-parallel scaling across blades.
    base = rows[0][1]
    assert rows[1][1] / base > 1.9
    assert rows[2][1] / base > 3.7


def test_jsram_main_memory(run_once):
    study = run_once(
        jsram_main_memory_study,
    )
    print()
    for entry in study.entries:
        print(
            f"  {entry.model_name:11s} @ {entry.jsram_capacity_bytes / 1e9:5.1f} GB JSRAM: "
            f"footprint {entry.footprint_bytes / 1e9:5.1f} GB fits={entry.fits} "
            f"speed-up {entry.speedup:.2f}x"
        )
    fitting = [e for e in study.entries if e.fits]
    assert fitting
    # Serving weights+KV from JSRAM at torus bandwidth beats cryo-DRAM.
    assert all(e.speedup > 1.3 for e in fitting)
    # Capacity gates the benefit: the 4.19 GB baseline pool fits nothing.
    baseline = [e for e in study.entries if e.jsram_capacity_bytes < 5 * GB]
    assert all(not e.fits for e in baseline)
