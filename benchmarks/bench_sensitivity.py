"""Experiment A4 — tornado sensitivity of the headline inference speed-up.

Perturbs every calibrated-but-unpublished parameter (DESIGN.md #7/#8)
across generous ranges and asserts the paper's qualitative conclusion —
SCD inference is many times faster than the GPU baseline — survives all
of them.
"""

from __future__ import annotations

from repro.analysis.sensitivity import inference_speedup_sensitivity


def test_speedup_sensitivity(run_once):
    result = run_once(
        inference_speedup_sensitivity, io_tokens=(100, 60)
    )

    print(f"\n  baseline speed-up: {result.baseline_speedup:.1f}x")
    for entry in result.sorted_by_swing():
        print(
            f"  {entry.parameter:34s} [{entry.low_setting:g}, "
            f"{entry.high_setting:g}] -> speed-up "
            f"{entry.speedup_at_low:.1f}x .. {entry.speedup_at_high:.1f}x"
        )

    # The paper's band at the baseline calibration.
    assert 8.0 <= result.baseline_speedup <= 12.0
    # Robustness: under EVERY perturbation the conclusion holds with margin.
    for entry in result.entries:
        assert entry.worst_case > 4.0, entry
    # The memory-path knobs dominate (BDP budget / streaming efficiency),
    # as expected for a memory-bound workload; the communication and launch
    # knobs are second-order.
    swings = result.sorted_by_swing()
    dominant = swings[0]
    assert "stream" in dominant.parameter or "outstanding" in dominant.parameter
    comm_knobs = [e for e in swings if "alpha" in e.parameter or "launch" in e.parameter]
    assert all(e.swing < dominant.swing for e in comm_knobs)
