"""Experiment S6 — Sec. VI closing study: the KV cache in the blade L2.

Paper: "the required kv-cache size for the popular llama models are,
llama2-7B: 2 GB, llama2-13B: 3 GB and llama2-70B: 10 GB.  Thus, one can
possibly fit the entire kv-cache of the two smaller llama models onto the
[~4.19 GB] L2 cache ... Our early estimates suggest a speed-up of ~2-4x for
the relevant GEMMs/GEMVs (depending on the software overhead of launching
the kernels)."
"""

from __future__ import annotations

from repro.analysis.figures import l2_kv_cache_study


def test_l2_kv_cache_study(run_once):
    study = run_once(l2_kv_cache_study)

    print()
    for entry in study.entries:
        print(
            f"  {entry.model_name:11s} KV {entry.kv_cache_bytes / 1e9:5.2f} GB "
            f"fits={entry.fits_l2}  K/V speed-up "
            f"{entry.kv_gemm_speedup_with_overhead:.2f}x-"
            f"{entry.kv_gemm_speedup:.2f}x"
        )

    by_name = {entry.model_name: entry for entry in study.entries}

    # Sec. VI KV-cache sizes (2 / 3 / 10 GB).
    assert 1.8e9 <= by_name["Llama2-7B"].kv_cache_bytes <= 2.4e9
    assert 2.8e9 <= by_name["Llama2-13B"].kv_cache_bytes <= 3.6e9
    assert 9.5e9 <= by_name["Llama2-70B"].kv_cache_bytes <= 11.5e9

    # 7B and 13B fit the ~4.19 GB L2; 70B does not.
    assert by_name["Llama2-7B"].fits_l2
    assert by_name["Llama2-13B"].fits_l2
    assert not by_name["Llama2-70B"].fits_l2

    # K/V GEMV gain in the paper's 2-4x band at the optimistic
    # (overhead-free) end, and > 1.2x even with dispatch overhead.
    for name in ("Llama2-7B", "Llama2-13B"):
        entry = by_name[name]
        assert 2.0 <= entry.kv_gemm_speedup <= 4.0, entry
        assert entry.kv_gemm_speedup_with_overhead > 1.2
        assert entry.kv_gemm_speedup_with_overhead <= entry.kv_gemm_speedup

    # No L2 residency for 70B means no gain.
    assert by_name["Llama2-70B"].kv_gemm_speedup == 1.0
