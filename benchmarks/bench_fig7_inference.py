"""Experiment F7 — Fig. 7: inference latency vs DRAM bandwidth (+ insets).

Llama-405B, B=8, bf16, I/O 200/200 tokens, DRAM latency 30 ns, TP = number
of SPUs (64).

Paper claims asserted:
* latency falls monotonically with bandwidth, ~17× from 0.5 to 32 TBps,
* scaling saturates beyond ~8 TBps (the DRAM-latency-bound limit),
* inset (a): achieved PFLOP/s/SPU degrades steadily (near-linearly) as DRAM
  latency sweeps 10 → 200 ns at 16 TBps,
* inset (b): increasing batch trades latency for throughput, with the GPU
  reference dominated at equal batch.
"""

from __future__ import annotations

from repro.analysis.figures import fig7_inference


def test_fig7(run_once):
    fig7 = run_once(fig7_inference)

    print()
    print("BW sweep:", [f"{b}TB:{l:.2f}s" for b, l in zip(fig7.bandwidths, fig7.latencies)])
    print("latency sweep PF/SPU:", [f"{n:.0f}ns:{p:.3f}" for n, p in zip(fig7.dram_latencies_ns, fig7.latency_sweep_pflops_per_spu)])
    print("batch sweep:", [f"B{b}:{l:.2f}s/{p:.2f}PF" for b, l, p in zip(fig7.batches, fig7.batch_latencies, fig7.batch_pflops_per_spu)])
    print(f"GPU reference (B=8): {fig7.gpu_latency:.2f}s")

    lat = fig7.latencies
    # Monotone improvement with bandwidth.
    assert all(b <= a for a, b in zip(lat, lat[1:]))
    # Paper: 0.5 TBps (8.8 s) -> 32 TBps (0.52 s) is ~17x.
    assert 12 <= fig7.speedup_low_to_high <= 25
    # Saturation beyond 8 TBps: the 16->32 TBps step buys far less than the
    # 0.5->1 TBps step (relative).
    gain_low = lat[0] / lat[1]
    i16 = fig7.bandwidths.index(16)
    gain_high = lat[i16] / lat[i16 + 1]
    assert gain_low > 1.7
    assert gain_high < 1.5

    # Inset (a): throughput degrades steadily with DRAM latency, roughly
    # linear in the inverse sense: 10 ns -> 200 ns loses ~4-6x.
    pf = fig7.latency_sweep_pflops_per_spu
    assert all(b <= a for a, b in zip(pf, pf[1:]))
    assert 3.0 <= pf[0] / pf[-1] <= 8.0

    # Inset (b): batch raises both latency and achieved throughput.
    assert all(
        b >= a for a, b in zip(fig7.batch_latencies, fig7.batch_latencies[1:])
    )
    assert all(
        b >= a
        for a, b in zip(fig7.batch_pflops_per_spu, fig7.batch_pflops_per_spu[1:])
    )
    # GPU reference at B=8 is several times slower than the SPU point.
    i8 = fig7.batches.index(8)
    assert fig7.gpu_latency / fig7.batch_latencies[i8] > 5.0
