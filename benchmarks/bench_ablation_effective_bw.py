"""Experiment A1 — ablation of the effective-bandwidth (BDP) model.

DESIGN.md substitution #7 models limited memory-level parallelism:
``1/bw_eff = 1/bw + latency/outstanding_bytes``.  This ablation shows the
term is what produces the paper's two latency observations (Fig. 7):
saturation of the bandwidth sweep beyond ~8 TBps, and the steady
throughput degradation with DRAM latency.  Removing the limit
(``outstanding_bytes=None``) makes the sweep keep scaling and flattens the
latency sensitivity.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.figures import scd_system
from repro.core.model import Optimus
from repro.memory.hierarchy import MemoryLevel
from repro.parallel.mapper import map_inference
from repro.units import TBPS
from repro.workloads.llm import LLAMA_405B


def _system_with_outstanding(bandwidth: float, outstanding: float | None):
    system = scd_system(bandwidth)
    accel = system.accelerator
    dram = accel.hierarchy["DRAM"]
    hierarchy = accel.hierarchy.replace_level(
        "DRAM", replace(dram, outstanding_bytes=outstanding)
    )
    return replace(system, accelerator=accel.with_hierarchy(hierarchy))


def _latency(system) -> float:
    return (
        Optimus(system)
        .evaluate_inference(map_inference(LLAMA_405B, system, batch=8))
        .latency
    )


def test_bdp_limit_creates_saturation(run_once):
    def sweep():
        rows = []
        for bw in (8, 16, 32, 64):
            with_limit = _latency(_system_with_outstanding(bw * TBPS, 512 * 1024))
            without = _latency(_system_with_outstanding(bw * TBPS, None))
            rows.append((bw, with_limit, without))
        return rows

    rows = run_once(sweep)
    print()
    print(f"{'BW':>4s} {'latency (BDP)':>14s} {'latency (no BDP)':>17s}")
    for bw, with_limit, without in rows:
        print(f"{bw:4d} {with_limit:14.3f} {without:17.3f}")

    # The BDP limit always costs time at these bandwidths.
    assert all(w > wo for _, w, wo in rows)
    # Stronger: the 32->64 TBps step keeps paying off without the limit but
    # flattens with it (the paper's "DRAM latency bound limit").
    gain_with = rows[-2][1] / rows[-1][1]
    gain_without = rows[-2][2] / rows[-1][2]
    assert gain_without > gain_with
    assert gain_with < 1.25


def test_bdp_limit_creates_latency_sensitivity(run_once):
    def sweep():
        base = _system_with_outstanding(16 * TBPS, 512 * 1024)
        free = _system_with_outstanding(16 * TBPS, None)
        return (
            _latency(base.with_dram_latency(10e-9)),
            _latency(base.with_dram_latency(200e-9)),
            _latency(free.with_dram_latency(10e-9)),
            _latency(free.with_dram_latency(200e-9)),
        )

    l10, l200, f10, f200 = run_once(sweep)
    print(f"\n  BDP:    10ns {l10:.3f}s -> 200ns {l200:.3f}s ({l200 / l10:.1f}x)")
    print(f"  no BDP: 10ns {f10:.3f}s -> 200ns {f200:.3f}s ({f200 / f10:.2f}x)")
    # With the limit, 200 ns costs several x; without it, latency is nearly
    # invisible (only the fixed per-kernel term remains).
    assert l200 / l10 > 3.0
    assert f200 / f10 < 1.2
