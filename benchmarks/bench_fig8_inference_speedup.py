"""Experiment F8 — Fig. 8: inference speed-up across models and batches.

(a) MoE-132B/38B, Llama-70B, Llama-405B at B=8 on one blade (64 SPUs,
16 TBps/SPU, 30 ns) vs 64 H100s — paper: 8.9× / 10.6× / 9.4×.
(b) Llama-405B speed-up across B = 4..128 plus the KV-cache footprint
approaching the 64-GPU 5.12 TB capacity at B=128.
"""

from __future__ import annotations

from repro.analysis.figures import fig8_inference_speedup


def test_fig8(run_once):
    fig8 = run_once(fig8_inference_speedup)

    print()
    for name, speedup in zip(fig8.model_names, fig8.model_speedups):
        print(f"  {name:14s} {speedup:5.1f}x")
    for b, s, kv in zip(fig8.batches, fig8.batch_speedups, fig8.kv_cache_bytes):
        print(f"  B={b:4d}: {s:5.1f}x  KV {kv / 1e12:5.2f} TB")

    by_name = dict(zip(fig8.model_names, fig8.model_speedups))

    # Paper: "massive speed-up of 9x-11x depending on the LLM model".
    assert all(8.0 <= s <= 14.0 for s in fig8.model_speedups), by_name
    # "SCD performs best for Llama-70B among these models."
    assert by_name["Llama-70B"] == max(fig8.model_speedups)
    # Llama-405B lands on the paper's 9.4x.
    assert 8.5 <= by_name["Llama-405B"] <= 10.5

    # (b) Speed-up is robust across batch sizes (stays in a tight band).
    assert all(7.0 <= s <= 12.0 for s in fig8.batch_speedups)
    assert max(fig8.batch_speedups) / min(fig8.batch_speedups) < 1.6

    # KV cache grows linearly with batch and approaches the 64-GPU capacity
    # (5.12 TB) at B=128 — the paper's GPU scaling ceiling.
    kv = fig8.kv_cache_bytes
    assert all(b > a for a, b in zip(kv, kv[1:]))
    ratio_128 = kv[-1] / fig8.gpu_memory_capacity
    assert 0.75 <= ratio_128 <= 1.1, ratio_128


def test_fig8_gpu_capacity_limit(run_once):
    """The B=128 point presses against GPU capacity once weights are added."""
    from repro.arch.gpu import build_gpu_system
    from repro.parallel.mapper import map_inference
    from repro.workloads.llm import LLAMA_405B

    def memory_pressure():
        gpu = build_gpu_system(64)
        mapped = map_inference(LLAMA_405B, gpu, batch=128)
        return mapped.memory_required / gpu.total_memory_capacity

    pressure = run_once(memory_pressure)
    print(f"\n  weights+KV at B=128: {pressure * 100:.1f}% of 64x80 GB")
    # "the KV-cache size is very close to the maximum memory capacity of 64
    # GPUs (5TB), thus potentially limiting scaling up of batch sizes".
    assert 0.9 <= pressure <= 1.15
