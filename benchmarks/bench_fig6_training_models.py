"""Experiment F6 — Fig. 6: training time per batch, SPU vs GPU (H100).

GPT3-18.4B / 76.1B / 175B, B=64, TP=8/PP=8/DP=1, bf16, 64 SPUs (16 TBps per
SPU) vs 64 H100s.

Paper claims asserted:
* SCD is 3.5-4.4× faster per batch across the three model sizes,
* the SPU gains come from both faster compute and faster communication,
* achieved throughput ~1.5 PFLOP/s/SPU vs ~0.35-0.48 PFLOP/s/GPU,
* GPU time per batch reaches the several-second scale for GPT3-175B.
"""

from __future__ import annotations

from repro.analysis.figures import fig6_training_models


def test_fig6(run_once):
    fig6 = run_once(fig6_training_models)

    print()
    print(f"{'model':12s} {'unit':4s} {'s/batch':>8s} {'comp':>7s} {'comm':>7s} {'others':>7s} {'PF/PU':>6s}")
    for entry in fig6.entries:
        for label, report in (("SPU", entry.spu), ("GPU", entry.gpu)):
            parts = report.breakdown()
            print(
                f"{entry.model_name:12s} {label:4s} {report.time_per_batch:8.3f} "
                f"{parts['compute']:7.3f} {parts['communication']:7.3f} "
                f"{parts['others']:7.3f} "
                f"{report.achieved_flops_per_pu / 1e15:6.2f}"
            )
        print(f"{entry.model_name:12s} speed-up {entry.speedup:.2f}x")

    speedups = fig6.speedups
    # Paper: "speed-up varies from 3.5x - 4.4x for this particular set up".
    assert all(3.0 <= s <= 4.8 for s in speedups), speedups

    for entry in fig6.entries:
        # SCD faster in BOTH compute and communication.
        assert entry.spu.compute_time < entry.gpu.compute_time
        assert entry.spu.comm_time < entry.gpu.comm_time
        # Decomposition adds up to the total.
        for report in (entry.spu, entry.gpu):
            parts = report.breakdown()
            assert abs(sum(parts.values()) - report.time_per_batch) < 1e-9

    # Inset: achieved PFLOP/s per processing unit.
    spu_pf = [e.spu.achieved_flops_per_pu / 1e15 for e in fig6.entries]
    gpu_pf = [e.gpu.achieved_flops_per_pu / 1e15 for e in fig6.entries]
    assert all(1.2 <= x <= 1.7 for x in spu_pf), spu_pf  # paper ~1.5 max
    assert all(0.25 <= x <= 0.55 for x in gpu_pf), gpu_pf

    # Larger models amortize bubbles: achieved throughput grows with size.
    assert spu_pf == sorted(spu_pf)
    # GPT3-175B on GPUs takes several seconds per batch (figure scale 0-6 s).
    assert 3.0 <= fig6.entries[-1].gpu.time_per_batch <= 6.5
