"""Experiment T1 — regenerate Table I (technology comparison).

Asserts the headline technology ratios the paper builds its case on:
15× frequency, ~40× device-density deficit, ~100× interconnect power
efficiency, and the JSRAM/SRAM cell facts.
"""

from __future__ import annotations

from repro.tech import CMOS_5NM, SCD_NBTIN, technology_comparison_rows
from repro.tech.table import technology_comparison_table


def test_table1_rows(run_once):
    rows = run_once(technology_comparison_rows)
    assert len(rows) == 12
    print()
    print(technology_comparison_table())


def test_table1_claims(run_once):
    def claims():
        scd, cmos = SCD_NBTIN, CMOS_5NM
        return {
            "freq_ratio": scd.operating_frequency / cmos.operating_frequency,
            "density_deficit": cmos.device_density / scd.device_density,
            "interconnect_gain": scd.interconnect_bits_per_pj
            / cmos.interconnect_bits_per_pj,
            "voltage_ratio": cmos.signal_voltage / scd.signal_voltage,
            "scd_cell_jj": scd.sram_cell_devices,
            "cmos_cell_t": cmos.sram_cell_devices,
        }

    result = run_once(claims)
    # "operate at ~20x higher frequencies" — 30 GHz vs 2 GHz is 15x at the
    # Table I baseline.
    assert result["freq_ratio"] == 15.0
    assert 40 <= result["density_deficit"] <= 45
    # "10000x more energy efficient communication at the on-chip clock rate"
    # folds rate and energy; the per-bit budget row alone is >100x.
    assert result["interconnect_gain"] > 100
    assert result["voltage_ratio"] > 500
    assert result["scd_cell_jj"] == 8
    assert result["cmos_cell_t"] == 6
