"""Experiment F3 — the SCD blade baseline specification (Fig. 3c).

Every row of the Fig. 3c table is *derived* bottom-up from the substrate
models and asserted against the paper's values, including both packaging
tables (chip-to-chip link and 4K interposer).
"""

from __future__ import annotations

from repro.analysis.tables import render_two_column
from repro.arch.blade import build_blade
from repro.interconnect.packaging import chip_to_chip_link, interposer_4k


def test_blade_spec(run_once):
    blade = run_once(build_blade)
    print()
    print(render_two_column(blade.spec_rows(), ("Parameter", "Baseline Value")))

    # Fig. 3c row-by-row.
    assert 2.4e15 <= blade.peak_flops_per_spu <= 2.5e15  # ~2.45 PFLOPs
    assert blade.n_spus == 64  # 8x8
    assert 23e6 <= blade.l1_capacity_bytes <= 25e6  # 24 MB
    assert abs(blade.l2_capacity_bytes - 3.375e9) < 1e6  # 3.375 GB
    assert 0.45e12 <= blade.dram_bandwidth_per_spu <= 0.48e12  # ~0.47 TBps
    assert abs(blade.dram.capacity_bytes - 2.048e12) < 1e9  # 2 TB
    assert abs(blade.main_memory_bandwidth - 30e12) < 1e9  # 30 TBps
    assert abs(blade.dram_latency - 30e-9) < 1e-12  # 30 ns
    assert abs(blade.reduction_latency - 60e-9) < 1e-12  # 60 ns
    assert 70e12 <= blade.spu_link_bandwidth <= 76e12  # ~73 TBps


def test_packaging_tables(run_once):
    def build():
        return chip_to_chip_link(), interposer_4k()

    c2c, interposer = run_once(build)
    print()
    print(
        f"  chip-to-chip : {c2c.usable_bumps:,} bumps, "
        f"{c2c.bandwidth / 1e12:.2f} TBps (paper: 4.40e4 / 73.3 TBps)"
    )
    print(
        f"  4K interposer: {interposer.usable_bumps:,} bumps, "
        f"{interposer.bandwidth / 1e15:.3f} PBps (paper: 4.40e6 / 7.33 PBps)"
    )
    assert 4.35e4 <= c2c.usable_bumps <= 4.45e4
    assert 72e12 <= c2c.bandwidth <= 74.5e12
    assert 4.35e6 <= interposer.usable_bumps <= 4.45e6
    assert 7.2e15 <= interposer.bandwidth <= 7.45e15
    # Sanity: the 4% coverage never exceeds what the pitch allows.
    assert c2c.bump_sites <= c2c.pitch_limited_sites
