"""Perf trajectory benchmark: op-program engine vs the seed's flat timing.

Times a reference Fig. 5 + Fig. 7 sweep twice on the same machine in the
same process:

* **engine** — the production path: run-length-encoded op programs with the
  shared memoized kernel-timing cache;
* **flat**   — the seed's behavior, reproduced via
  ``Optimus(use_programs=False, cache=NullTimingCache())``: every kernel of
  every layer replica timed one by one, nothing memoized.

Asserts the two produce identical series (1e-9 relative) and that the
engine is ≥5× faster, then writes the measurements to ``BENCH_engine.json``
at the repo root — the repo's recorded perf trajectory.  Also times the
batch runner serving the same scenarios out of a warm result store
(``serve_warm_seconds`` — a pure file-read replay, asserted compute-free)
and the HTTP daemon serving the same set warm over real sockets
(``serve_http_warm_seconds`` — one ``POST /run`` per scenario against a
live daemon, asserted compute-free), *hot* through a mem-over-file tiered
store (``serve_http_hot_seconds`` — the daemon's production stack: after
first promotion every request is answered from the in-process LRU tier,
asserted to perform zero file reads via per-tier stats), and *federated*
(``serve_http_peer_seconds`` — the warm set replayed through an
``http://`` store backend whose peer is a live daemon: raw entry GETs
with ETag revalidation and gzip on the wire), plus the async job engine
end to end
(``serve_http_cold_concurrent_seconds`` — N distinct cold specs POSTed
concurrently, each answered ``202`` and polled through ``/jobs/<digest>``
to its ``303`` redirect, asserted to compute each digest exactly once),
and gates all six numbers against the committed ``BENCH_baseline.json``:
a >2× regression of any fails the default pytest run.  All daemons run
on the shared :func:`repro.serving.testing.launch_daemon` harness.
Collected in the default pytest run via ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis.figures import (
    DEFAULT_SPU_BANDWIDTH,
    TRAINING_PARALLEL,
    fig5_training_bandwidth_sweep,
    fig7_inference,
    scd_system,
)
from repro.arch.gpu import build_gpu_system
from repro.core.model import Optimus
from repro.core.timing_cache import NullTimingCache, default_timing_cache
from repro.parallel.mapper import map_inference, map_training
from repro.units import NS, TBPS
from repro.workloads.llm import GPT3_76B, LLAMA_405B

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULT_PATH = REPO_ROOT / "BENCH_engine.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"

#: Committed-baseline regression tolerance (wall-clock is machine-noisy;
#: a genuine engine regression shows up as far more than 2×).
GATE_FACTOR = 2.0

FIG5_BANDWIDTHS = (0.5, 1, 2, 4, 8, 16, 32, 64)
FIG7_BANDWIDTHS = (0.5, 1, 2, 4, 8, 16, 32)
FIG7_LATENCIES_NS = (10, 30, 50, 100, 150, 200)
FIG7_BATCHES = (4, 8, 16, 32, 64, 128)

#: The scenarios the batch-serving measurement re-serves from a warm store.
SERVE_SCENARIOS = (
    "fig5",
    "fig7-bandwidth",
    "fig7-dram-latency",
    "fig7-batch",
    "fig7-gpu",
)

#: Distinct cold digests for the async-serving measurement: enough to
#: exercise queueing behind the worker pool without turning a perf probe
#: into a load test.
N_COLD_JOBS = 6

#: Job-engine worker threads for the async-serving measurement.
COLD_JOB_WORKERS = 4


def _seed_optimus(system) -> Optimus:
    """An evaluator that reproduces the seed's flat, uncached timing walk."""
    return Optimus(system, cache=NullTimingCache(), use_programs=False)


def _flat_fig5() -> list[float]:
    series = []
    for bw in FIG5_BANDWIDTHS:
        system = scd_system(bw * TBPS)
        mapped = map_training(GPT3_76B, system, TRAINING_PARALLEL, 128)
        report = _seed_optimus(system).evaluate_training(mapped)
        series.append(report.achieved_flops_per_pu / 1e15)
    return series


def _flat_fig7() -> dict[str, list[float]]:
    def infer(system, batch):
        return _seed_optimus(system).evaluate_inference(
            map_inference(system=system, model=LLAMA_405B, batch=batch,
                          input_tokens=200, output_tokens=200)
        )

    latencies = [
        infer(scd_system(bw * TBPS), 8).latency for bw in FIG7_BANDWIDTHS
    ]
    base = scd_system(DEFAULT_SPU_BANDWIDTH)
    latency_sweep = [
        infer(base.with_dram_latency(ns * NS), 8).achieved_flops_per_pu / 1e15
        for ns in FIG7_LATENCIES_NS
    ]
    batch_latencies = [infer(base, b).latency for b in FIG7_BATCHES]
    gpu_latency = infer(build_gpu_system(base.n_accelerators), 8).latency
    return {
        "latencies": latencies,
        "latency_sweep_pflops_per_spu": latency_sweep,
        "batch_latencies": batch_latencies,
        "gpu_latency": [gpu_latency],
    }


def _max_rel_err(a, b) -> float:
    return max(
        abs(x - y) / max(abs(y), 1e-300) for x, y in zip(a, b, strict=True)
    )


def test_engine_speed_vs_seed_flat_timing():
    # Cold-start the shared cache so the engine pass is not pre-warmed by
    # earlier tests in the same process.
    default_timing_cache().clear()

    t0 = time.perf_counter()
    fig5 = fig5_training_bandwidth_sweep(bandwidths_tbps=FIG5_BANDWIDTHS)
    fig7 = fig7_inference(
        bandwidths_tbps=FIG7_BANDWIDTHS,
        dram_latencies_ns=FIG7_LATENCIES_NS,
        batches=FIG7_BATCHES,
    )
    engine_seconds = time.perf_counter() - t0
    cache = default_timing_cache()
    cache_stats = {
        "hits": cache.hits,
        "misses": cache.misses,
        "hit_rate": round(cache.hit_rate, 4),
    }

    t0 = time.perf_counter()
    flat5 = _flat_fig5()
    flat7 = _flat_fig7()
    flat_seconds = time.perf_counter() - t0

    # Equivalence: the engine must reproduce the seed numbers exactly.
    errors = {
        "fig5.achieved_pflops_per_spu": _max_rel_err(
            fig5.achieved_pflops_per_spu, flat5
        ),
        "fig7.latencies": _max_rel_err(fig7.latencies, flat7["latencies"]),
        "fig7.latency_sweep_pflops_per_spu": _max_rel_err(
            fig7.latency_sweep_pflops_per_spu,
            flat7["latency_sweep_pflops_per_spu"],
        ),
        "fig7.batch_latencies": _max_rel_err(
            fig7.batch_latencies, flat7["batch_latencies"]
        ),
        "fig7.gpu_latency": _max_rel_err(
            [fig7.gpu_latency], flat7["gpu_latency"]
        ),
    }
    max_rel_err = max(errors.values())
    speedup = flat_seconds / engine_seconds

    serve = _measure_warm_serving()
    cold_async = _measure_cold_async_serving()

    result = {
        "benchmark": "fig5 + fig7 reference sweep",
        "engine_seconds": round(engine_seconds, 6),
        "flat_seed_seconds": round(flat_seconds, 6),
        "speedup": round(speedup, 2),
        "max_rel_err": max_rel_err,
        "series_rel_err": {k: float(v) for k, v in errors.items()},
        "timing_cache": cache_stats,
        "serve_scenarios": list(SERVE_SCENARIOS),
        "serve_cold_seconds": serve["cold_seconds"],
        "serve_warm_seconds": serve["warm_seconds"],
        "serve_http_warm_seconds": serve["http_warm_seconds"],
        "serve_http_hot_seconds": serve["http_hot_seconds"],
        "serve_http_peer_seconds": serve["http_peer_seconds"],
        "serve_http_cold_concurrent_seconds": cold_async[
            "http_cold_concurrent_seconds"
        ],
        "serve_cold_jobs": N_COLD_JOBS,
        "note": (
            "flat_seed_seconds reproduces the pre-engine seed path "
            "(per-replica op walk, no memoization) in the same process; "
            "serve_warm_seconds replays the scenarios from a warm result "
            "store (pure file reads); serve_http_warm_seconds serves the "
            "same warm set over real sockets through the HTTP daemon; "
            "serve_http_hot_seconds serves it through a mem-over-file "
            "tiered store with zero file reads after promotion; "
            "serve_http_peer_seconds replays the warm set through an "
            "http:// store backend against a peer daemon (the federation "
            "wire: raw entry GETs with ETag revalidation and gzip); "
            "serve_http_cold_concurrent_seconds submits N distinct cold "
            "specs concurrently (202 each), polls /jobs/<digest> to the "
            "303 redirect and reads every result — the async job engine "
            "end to end over real sockets"
        ),
    }
    RESULT_PATH.write_text(json.dumps(result, indent=1) + "\n")

    print(
        f"\nengine {engine_seconds * 1e3:.1f} ms vs flat seed "
        f"{flat_seconds * 1e3:.1f} ms -> {speedup:.1f}x "
        f"(cache hit rate {cache_stats['hit_rate']:.2%}), "
        f"max series rel err {max_rel_err:.2e}; warm batch serving "
        f"{serve['warm_seconds'] * 1e3:.1f} ms for "
        f"{len(SERVE_SCENARIOS)} scenarios "
        f"({serve['http_warm_seconds'] * 1e3:.1f} ms over HTTP, "
        f"{serve['http_hot_seconds'] * 1e3:.1f} ms hot via mem tier, "
        f"{serve['http_peer_seconds'] * 1e3:.1f} ms through an http:// "
        "peer backend); "
        f"{N_COLD_JOBS} concurrent cold jobs in "
        f"{cold_async['http_cold_concurrent_seconds'] * 1e3:.1f} ms "
        "async end to end"
    )

    assert max_rel_err < 1e-9, errors
    assert speedup >= 5.0, (
        f"engine only {speedup:.1f}x faster than the seed flat path "
        f"({engine_seconds:.3f}s vs {flat_seconds:.3f}s)"
    )
    _gate_against_baseline(result)


def _measure_warm_serving() -> dict:
    """Time the batch runner cold (compute + store), warm (pure reads),
    the HTTP daemon serving the same warm set over real sockets, and the
    federation read path (an ``http://`` store backend over a peer
    daemon).

    Every warm pass must be compute-free — the kernel-timing counters are
    asserted not to move while every artifact is replayed.
    """
    import http.client
    import tempfile

    from repro.scenarios.backends import HTTPPeerBackend
    from repro.scenarios.batch import run_many
    from repro.scenarios.store import ResultStore
    from repro.serving.testing import launch_daemon

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        store = ResultStore(tmp)
        t0 = time.perf_counter()
        cold = run_many(SERVE_SCENARIOS, store=store)
        cold_seconds = time.perf_counter() - t0
        assert all(not entry.from_cache for entry in cold.entries)

        cache = default_timing_cache()
        counters = (cache.hits, cache.misses)
        t0 = time.perf_counter()
        warm = run_many(SERVE_SCENARIOS, store=store)
        warm_seconds = time.perf_counter() - t0
        assert all(entry.from_cache for entry in warm.entries)
        assert (cache.hits, cache.misses) == counters, (
            "warm batch serving performed kernel timings"
        )

        # Warm HTTP serving: one POST /run per scenario on a keep-alive
        # connection against the live threaded daemon.
        with launch_daemon(store=store) as daemon:
            connection = http.client.HTTPConnection(
                daemon.host, daemon.port, timeout=60
            )
            counters = (cache.hits, cache.misses)
            t0 = time.perf_counter()
            for name in SERVE_SCENARIOS:
                connection.request(
                    "POST", "/run", json.dumps({"scenario": name})
                )
                response = connection.getresponse()
                body = json.loads(response.read())
                assert response.status == 200 and body["from_cache"], name
            http_warm_seconds = time.perf_counter() - t0
            connection.close()
            assert (cache.hits, cache.misses) == counters, (
                "warm HTTP serving performed kernel timings"
            )

        # Hot HTTP serving: the daemon's production stack — a mem:// tier
        # over the same cache dir.  A priming pass promotes every digest;
        # the timed pass is answered from the in-process LRU with zero
        # file reads (asserted via the file tier's per-tier stats).
        tiered = ResultStore(f"mem://,file://{tmp}")
        file_tier = tiered.backend.tiers[1]
        with launch_daemon(store=tiered) as daemon:
            connection = http.client.HTTPConnection(
                daemon.host, daemon.port, timeout=60
            )

            def post_all() -> None:
                for name in SERVE_SCENARIOS:
                    connection.request(
                        "POST", "/run", json.dumps({"scenario": name})
                    )
                    response = connection.getresponse()
                    body = json.loads(response.read())
                    assert (
                        response.status == 200 and body["from_cache"]
                    ), name

            post_all()  # promote every digest into the mem tier
            file_reads = file_tier.counters.reads
            counters = (cache.hits, cache.misses)
            t0 = time.perf_counter()
            post_all()
            http_hot_seconds = time.perf_counter() - t0
            connection.close()
            assert (cache.hits, cache.misses) == counters, (
                "hot HTTP serving performed kernel timings"
            )
            assert file_tier.counters.reads == file_reads, (
                "hot HTTP serving touched the file tier"
            )

        # Peer-federation serving: the same warm set replayed through an
        # ``http://`` store backend — the batch runner's store *is* a
        # remote daemon, so every read exercises the federation wire
        # (raw entry GET, ETag revalidation, gzip) instead of the local
        # filesystem.  Still compute-free.
        with launch_daemon(store=ResultStore(tmp)) as peer:
            peer_store = ResultStore(backend=HTTPPeerBackend(peer.url))
            counters = (cache.hits, cache.misses)
            t0 = time.perf_counter()
            federated = run_many(SERVE_SCENARIOS, store=peer_store)
            http_peer_seconds = time.perf_counter() - t0
            assert all(entry.from_cache for entry in federated.entries)
            assert (cache.hits, cache.misses) == counters, (
                "federated peer serving performed kernel timings"
            )
            assert peer_store.backend.counters.hits == len(
                SERVE_SCENARIOS
            ), "every scenario must be read over the peer wire"
    return {
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "http_warm_seconds": round(http_warm_seconds, 6),
        "http_hot_seconds": round(http_hot_seconds, 6),
        "http_peer_seconds": round(http_peer_seconds, 6),
    }


def _measure_cold_async_serving() -> dict:
    """Time the async job engine end to end over real sockets.

    ``N_COLD_JOBS`` distinct cold specs (the cheap blade-spec table,
    renamed per job so every digest is unique) are POSTed concurrently:
    each must be answered ``202`` immediately, then its thread polls
    ``GET /jobs/<digest>`` until the ``303`` redirect and reads the
    stored result.  The measured wall time covers submission → queueing
    behind the worker pool → compute → status poll → result read, for
    the whole concurrent batch.
    """
    import http.client
    import tempfile
    import threading

    from repro.scenarios import get
    from repro.scenarios.store import ResultStore
    from repro.serving.testing import launch_daemon

    base = get("fig3c-blade-spec").to_dict()
    specs = [dict(base, name=f"bench-cold-{i}") for i in range(N_COLD_JOBS)]

    with tempfile.TemporaryDirectory(prefix="repro-bench-jobs-") as tmp:
        store = ResultStore(tmp)
        with launch_daemon(
            store=store, job_workers=COLD_JOB_WORKERS
        ) as daemon:
            host, port = daemon.host, daemon.port
            failures: list[str] = []

            def submit_and_poll(spec: dict) -> None:
                connection = http.client.HTTPConnection(
                    host, port, timeout=60
                )
                try:
                    connection.request(
                        "POST", "/run", json.dumps({"scenario": spec})
                    )
                    response = connection.getresponse()
                    body = json.loads(response.read())
                    if response.status != 202:
                        failures.append(f"{spec['name']}: {body}")
                        return
                    digest = body["digest"]
                    while True:
                        connection.request("GET", f"/jobs/{digest}")
                        status = connection.getresponse()
                        payload = json.loads(status.read())
                        if status.status == 303:
                            break
                        if status.status != 200 or payload["status"] not in (
                            "queued",
                            "running",
                        ):
                            failures.append(f"{spec['name']}: {payload}")
                            return
                        time.sleep(0.002)
                    connection.request("GET", f"/results/{digest}")
                    result = connection.getresponse()
                    result.read()
                    if result.status != 200:
                        failures.append(f"{spec['name']}: result missing")
                finally:
                    connection.close()

            threads = [
                threading.Thread(target=submit_and_poll, args=(spec,))
                for spec in specs
            ]
            t0 = time.perf_counter()
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=120)
            cold_concurrent_seconds = time.perf_counter() - t0

            assert not failures, failures
            jobs = daemon.app.jobs.stats()
            assert jobs["done"] == N_COLD_JOBS and jobs["failed"] == 0, jobs
            assert store.stats.puts == N_COLD_JOBS, (
                "coalescing/caching broke: each unique digest must be "
                f"computed exactly once, got {store.stats.puts} puts"
            )
    return {
        "http_cold_concurrent_seconds": round(cold_concurrent_seconds, 6)
    }


def _gate_against_baseline(result: dict) -> None:
    """The tier-1 perf gate: fail on a >2× regression vs the committed
    baseline (``benchmarks/perf/BENCH_baseline.json``).

    Wall-clock is machine-dependent, so the allowance is scaled by a
    host-speed factor measured *in this very process*: the seed flat-timing
    pass exercises the same Python/model code with no caching, so
    ``measured flat / baseline flat`` says how much slower this host is
    than the machine that committed the baseline.  A slower host relaxes
    the gate proportionally; a faster host never tightens it below the
    committed absolute numbers.
    """
    assert BASELINE_PATH.is_file(), (
        f"missing committed perf baseline {BASELINE_PATH}; regenerate it "
        "from a trusted run's BENCH_engine.json"
    )
    baseline = json.loads(BASELINE_PATH.read_text())
    host_factor = max(
        1.0, result["flat_seed_seconds"] / baseline["flat_seed_seconds"]
    )
    for metric in (
        "engine_seconds",
        "serve_warm_seconds",
        "serve_http_warm_seconds",
        "serve_http_hot_seconds",
        "serve_http_peer_seconds",
        "serve_http_cold_concurrent_seconds",
    ):
        measured = result[metric]
        allowed = baseline[metric] * GATE_FACTOR * host_factor
        assert measured <= allowed, (
            f"perf gate: {metric} regressed to {measured:.4f}s "
            f"(baseline {baseline[metric]:.4f}s x {GATE_FACTOR} gate x "
            f"{host_factor:.2f} host factor = allowed {allowed:.4f}s). "
            "If the slowdown is intentional, update "
            "benchmarks/perf/BENCH_baseline.json in the same commit."
        )


if __name__ == "__main__":
    pytest.main([__file__, "-s"])
