"""Experiment F1 — the PCL design database through the EDA flow (Fig. 1f-h).

Regenerates the logic-layer numbers: every design of the database completes
the staged RTL→PCL flow, the bf16 MAC datapath lands near the paper's
~8k JJs, and the flow's output still computes the right function.
"""

from __future__ import annotations

import random

from repro.eda import designs, run_flow
from repro.pcl.simulate import simulate_bus


def test_design_database_flow(run_once):
    def run_all():
        return {
            name: run_flow(gen())
            for name, gen in designs.DESIGN_DATABASE.items()
        }

    reports = run_once(run_all)
    print()
    print(f"{'design':14s} {'datapathJJ':>10s} {'totalJJ':>8s} {'phases':>7s}")
    for name, report in reports.items():
        print(
            f"{name:14s} {report.datapath_jj:10d} {report.total_jj:8d} "
            f"{report.pipeline_depth:7d}"
        )
    # Paper Sec. III: "Our bf16 MAC ... consists of ~8k JJs."
    mac = reports["mac_bf16"]
    assert 7000 <= mac.datapath_jj <= 10000
    # Every design must be phase-aligned and non-trivial.
    for report in reports.values():
        assert report.total_jj > 0
        assert report.pipeline_depth >= 1


def test_mac_functional_through_flow(run_once):
    report = run_once(lambda: run_flow(designs.mac_bf16()))
    widths = {
        "man_a": 8, "man_b": 8, "exp_a": 8, "exp_b": 8,
        "sign_a": 1, "sign_b": 1, "acc_s": 32, "acc_c": 32,
    }
    rng = random.Random(7)
    for _ in range(5):
        vals = {k: rng.randrange(1 << w) for k, w in widths.items()}
        out = simulate_bus(report.netlist, vals, widths)
        exp = vals["exp_a"] + vals["exp_b"]
        want = (
            vals["acc_s"] + vals["acc_c"]
            + ((vals["man_a"] * vals["man_b"]) << (exp & 0xF))
        ) % (1 << 32)
        assert (out["out_s"] + out["out_c"]) % (1 << 32) == want
