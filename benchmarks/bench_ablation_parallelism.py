"""Experiment A2 — ablation over parallelization strategies (TP/PP/DP).

The paper fixes TP=8/PP=8/DP=1 for its training studies; this ablation runs
the mapper's full strategy search for GPT3-76B on the blade and on the GPU
cluster, verifying that (a) the search space is non-trivial, (b) the paper's
setup is competitive, and (c) extreme strategies (pure DP on a 76B model,
TP across slow fabrics) lose for the modelled reasons.
"""

from __future__ import annotations

from repro.analysis.figures import TRAINING_PARALLEL, scd_system
from repro.arch.gpu import build_gpu_system
from repro.core.model import Optimus
from repro.core.optimizer import search_strategies
from repro.parallel.mapper import map_training
from repro.units import TBPS
from repro.workloads.llm import GPT3_76B


def test_strategy_search_scd(run_once):
    system = scd_system(16 * TBPS)
    results = run_once(
        search_strategies, GPT3_76B, system, 64
    )

    print()
    for result in results[:6]:
        p = result.parallel
        print(
            f"  TP={p.tensor_parallel:2d} PP={p.pipeline_parallel:2d} "
            f"DP={p.data_parallel:2d}: {result.time_per_batch:.3f} s/batch"
        )

    assert len(results) >= 8  # non-trivial space on 64 units
    best = results[0].time_per_batch
    worst = results[-1].time_per_batch
    assert worst / best > 1.3  # strategy choice matters

    # The paper's TP=8/PP=8/DP=1 is within 25% of the best mapping.
    paper = Optimus(system).evaluate_training(
        map_training(GPT3_76B, system, TRAINING_PARALLEL, 64)
    )
    assert paper.time_per_batch / best < 1.25


def test_strategy_search_gpu_prefers_intra_node_tp(run_once):
    """On the GPU cluster, TP should not want to span IB-connected nodes."""
    gpu = build_gpu_system(64)
    results = run_once(search_strategies, GPT3_76B, gpu, 64)
    best = results[0].parallel
    print(
        f"\n  best GPU mapping: TP={best.tensor_parallel} "
        f"PP={best.pipeline_parallel} DP={best.data_parallel}"
    )
    # NVSwitch nodes hold 8 GPUs; cross-node TP pays IB latency every layer.
    assert best.tensor_parallel <= 8

    tp64 = [
        r for r in results if r.parallel.tensor_parallel == 16
    ]
    if tp64:
        assert tp64[0].time_per_batch > results[0].time_per_batch
