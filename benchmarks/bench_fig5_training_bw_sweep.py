"""Experiment F5 — Fig. 5: training throughput vs DRAM bandwidth per SPU.

GPT3-76B training on 64 SPUs (TP=8/PP=8/DP=1, B=128, bf16), sweeping the
effective DRAM bandwidth per SPU from 0.5 to 64 TBps.

Paper claims asserted:
* achieved PFLOP/s/SPU grows monotonically with bandwidth,
* it saturates past ~16 TBps (modest improvement beyond),
* the inset's forward GEMM time flips from memory-bound-dominated at
  0.5 TBps to compute-bound-dominated at ≥16 TBps,
* residual memory-bound time (softmax/layer-norm class) persists at 64 TBps.
"""

from __future__ import annotations

from repro.analysis.figures import fig5_training_bandwidth_sweep


def test_fig5(run_once):
    fig5 = run_once(fig5_training_bandwidth_sweep)

    print()
    print(f"{'BW/SPU':>9s} {'PF/SPU':>8s} {'GEMM ms':>8s} {'mem ms':>7s} {'comp ms':>8s}")
    for bw, pf, total, mem, comp in zip(
        fig5.bandwidths,
        fig5.achieved_pflops_per_spu,
        fig5.gemm_time_per_layer,
        fig5.gemm_memory_bound_time,
        fig5.gemm_compute_bound_time,
    ):
        print(
            f"{bw:7.1f}TB {pf:8.3f} {total * 1e3:8.3f} {mem * 1e3:7.3f} "
            f"{comp * 1e3:8.3f}"
        )

    achieved = fig5.achieved_pflops_per_spu
    bandwidths = fig5.bandwidths

    # Monotone growth with bandwidth.
    assert all(b >= a for a, b in zip(achieved, achieved[1:]))

    # Saturation: going 16 -> 64 TBps buys < 10%; going 0.5 -> 16 buys > 4x.
    i16 = bandwidths.index(16)
    assert achieved[-1] / achieved[i16] < 1.10
    assert achieved[i16] / achieved[0] > 4.0

    # Saturated throughput approaches the sustained MAC-array rate
    # (paper: ~2 PFLOP/s/SPU; our explicit softmax/LN/bubble charges put the
    # plateau near ~1.5-1.6 — see EXPERIMENTS.md).
    assert 1.3 <= achieved[-1] <= 2.1

    # Inset: memory-bound fraction of GEMM time collapses with bandwidth.
    mem_frac = [
        m / t for m, t in zip(fig5.gemm_memory_bound_time, fig5.gemm_time_per_layer)
    ]
    assert mem_frac[0] > 0.9  # almost fully memory-bound at 0.5 TBps
    assert mem_frac[i16] < 0.15  # compute-bound-dominated at 16 TBps
    # The remaining memory-bound ops never fully vanish (softmax, LN, ...).
    assert fig5.gemm_memory_bound_time[-1] > 0.0

    # Inset absolute scale: ~1.5 ms/layer at 0.5 TBps, ~0.35 ms at 64 TBps.
    assert 1.0e-3 <= fig5.gemm_time_per_layer[0] <= 2.2e-3
    assert 0.25e-3 <= fig5.gemm_time_per_layer[-1] <= 0.5e-3
