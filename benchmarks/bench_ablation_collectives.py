"""Experiment A3 — ablation over collective algorithms.

Compares all-reduce time across algorithm families (ring, tree, in-network
switch reduction, 2D-torus) on both fabrics, checking the regimes the system
design exploits: latency-dominated small messages (decode) favour trees and
in-network reduction; bandwidth-dominated large messages (training) favour
ring/torus; the SCD torus beats the GPU hierarchy by orders of magnitude on
small messages — the root of the paper's inference speed-ups.
"""

from __future__ import annotations

from dataclasses import replace

from repro.arch.blade import build_blade
from repro.arch.gpu import h100_fabric
from repro.interconnect.collectives import (
    CollectiveAlgorithm,
    all_reduce_time,
)
from repro.units import KB, MB


def test_collective_algorithm_regimes(run_once):
    torus = build_blade().fabric()

    def sweep():
        rows = []
        for size, label in ((256 * KB, "decode msg"), (400 * MB, "training msg")):
            times = {}
            for algo in CollectiveAlgorithm:
                fabric = replace(torus, algorithm=algo)
                times[algo.value] = all_reduce_time(fabric, size, 64)
            rows.append((label, size, times))
        return rows

    rows = run_once(sweep)
    print()
    for label, size, times in rows:
        pretty = ", ".join(f"{k}={v * 1e6:.2f}us" for k, v in times.items())
        print(f"  {label} ({size / 1e6:.1f} MB): {pretty}")

    small = rows[0][2]
    large = rows[1][2]
    # Small messages: latency term dominates -> tree/switch beat ring.
    assert small["tree"] < small["ring"]
    assert small["switch_reduction"] < small["ring"]
    # Large messages: ring/torus are bandwidth-optimal -> beat tree.
    assert large["ring"] < large["tree"]
    assert large["torus_2d"] < large["tree"]


def test_scd_vs_gpu_small_message_allreduce(run_once):
    def measure():
        torus = build_blade().fabric()
        gpu = h100_fabric()
        size = 256 * KB  # Llama-405B decode activation at B=8
        return (
            all_reduce_time(torus, size, 64),
            gpu.all_reduce_time(size, 64),
        )

    scd_time, gpu_time = run_once(measure)
    print(
        f"\n  64-way 256 KB all-reduce: SCD {scd_time * 1e9:.0f} ns vs "
        f"GPU {gpu_time * 1e6:.1f} us ({gpu_time / scd_time:.0f}x)"
    )
    # The torus all-reduce is dominated by the 60 ns reduction primitive;
    # the GPU pays NVLink+IB latency every decode layer.
    assert scd_time < 1e-6
    assert gpu_time > 5e-6
    assert gpu_time / scd_time > 20
